// Package serve is the multi-tenant HF service layer: it accepts many
// concurrent SCF jobs, multiplexes them onto a shared fockd shard fleet
// through job-scoped netga sessions, and keeps the daemon overload-safe
// with explicit admission control, per-tenant fair-share scheduling,
// per-job deadlines, and a graceful degradation ladder (DESIGN.md §12).
//
// The invariant the whole package is built around: once a job is
// ADMITTED it either completes with a correct energy or terminates with
// an explicit, attributable error (deadline, cancel, shed, shard
// failure past the retry budget) — never silently lost, never stuck
// unbounded, and never the cause of an OOM. Load beyond the configured
// budgets is refused at the door with a 503-style rejection instead of
// being absorbed.
package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// JobState is one node of the job lifecycle state machine:
//
//	submit ──(admission)──> Queued ──> Running ──> Done
//	   │                      │  ▲        │  ├───> Failed
//	   └─> rejected (no job)  │  └(park)──┤  └───> Canceled
//	                          └─> Shed    └──(retry, same state)
//
// Rejected submissions never become Jobs — the caller gets the error
// synchronously, which is what keeps rejection latency bounded.
type JobState int32

const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateFailed
	StateCanceled // deadline exceeded or canceled by the client
	StateShed     // dropped from the queue by the degradation ladder
	StateParked   // checkpointed and off the executor; resumable
)

func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	case StateShed:
		return "shed"
	case StateParked:
		return "parked"
	}
	return "unknown"
}

// Terminal reports whether the state ends the job's lifecycle. Parked is
// deliberately not terminal while serving (the job re-queues), but a
// drain leaves jobs Parked with their checkpoints on disk.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateShed
}

// Cancellation causes, distinguished through context.Cause so the SCF
// stack reports *why* it stopped and the server maps the reason to the
// right terminal state.
var (
	ErrDeadline  = errors.New("serve: job deadline exceeded")
	ErrCanceled  = errors.New("serve: job canceled by client")
	ErrParked    = errors.New("serve: job parked (preempted)")
	ErrDraining  = errors.New("serve: server draining")
	ErrKilled    = errors.New("serve: peer killed")       // chaos: simulated SIGKILL
	ErrLeaseLost = errors.New("serve: job lease lost")    // another peer adopted the job
)

// JobSpec is what a tenant submits: the chemical system plus scheduling
// metadata. The zero value of every field has a sane default.
type JobSpec struct {
	// Tenant names the submitting tenant for quota and fair-share
	// accounting; empty maps to "default".
	Tenant string `json:"tenant,omitempty"`
	// Priority orders jobs within a tenant and steers the shedding
	// ladder: under pressure the lowest-priority work is shed or parked
	// first. Higher is more important; default 0.
	Priority int `json:"priority,omitempty"`

	// Molecule is a chem.ParseSpec string: a paper formula ("C6H6"),
	// "alkane:N", or "flake:K".
	Molecule string `json:"molecule"`
	Basis    string `json:"basis,omitempty"` // default "sto-3g"

	MaxIter int     `json:"max_iter,omitempty"` // default 30
	ConvTol float64 `json:"conv_tol,omitempty"` // default 1e-8

	// DeadlineMs bounds the job's total latency from submission,
	// queueing included; 0 means no deadline. An expired job is
	// canceled at the next iteration boundary with its checkpoint on
	// disk.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// Event is one entry of a job's progress stream (NDJSON over HTTP).
type Event struct {
	Seq    int      `json:"seq"`
	Time   int64    `json:"time_unix_ns"`
	Type   string   `json:"type"` // queued|running|iteration|parked|retry|done|failed|canceled|shed
	Iter   int      `json:"iter,omitempty"`
	Energy float64  `json:"energy,omitempty"`
	DeltaE float64  `json:"delta_e,omitempty"`
	State  JobState `json:"-"`
	Msg    string   `json:"msg,omitempty"`
}

// JobResult is the terminal outcome of a completed job.
type JobResult struct {
	Converged  bool    `json:"converged"`
	Energy     float64 `json:"energy"`
	Iterations int     `json:"iterations"`
	Retries    int     `json:"retries"` // shard-failure retries consumed
}

// Job is one admitted SCF job. All mutable fields are guarded by mu;
// the context is fixed at admission and carries the deadline.
type Job struct {
	ID     string
	Spec   JobSpec
	NumBF  int   // basis functions, fixed at admission
	Bytes  int64 // resident-memory estimate charged against the budget
	Weight float64

	ctx    context.Context
	cancel context.CancelCauseFunc

	mu        sync.Mutex
	cond      *sync.Cond
	state     JobState
	events    []Event
	result    *JobResult
	err       error
	retries   int
	resumeAt  int // next StartIter when resumed from checkpoint
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newJob(id string, spec JobSpec, nbf int, bytes int64, weight float64, ctx context.Context, cancel context.CancelCauseFunc) *Job {
	j := &Job{
		ID: id, Spec: spec, NumBF: nbf, Bytes: bytes, Weight: weight,
		ctx: ctx, cancel: cancel,
		state:     StateQueued,
		submitted: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Cancel requests client-initiated cancellation; the job terminates at
// the next iteration boundary with its checkpoint saved.
func (j *Job) Cancel() { j.cancel(ErrCanceled) }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the terminal result and error (nil, nil while running).
func (j *Job) Result() (*JobResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// setState transitions the lifecycle and appends the matching event.
func (j *Job) setState(s JobState, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	typ := s.String()
	if s == StateQueued {
		typ = "queued" // re-queue after park shows as queued again
	}
	j.appendLocked(Event{Type: typ, State: s, Msg: msg})
}

// appendLocked adds an event and wakes streamers. Callers hold j.mu.
func (j *Job) appendLocked(ev Event) {
	ev.Seq = len(j.events)
	ev.Time = time.Now().UnixNano()
	j.events = append(j.events, ev)
	j.cond.Broadcast()
}

// Emit appends a progress event (iteration, retry) to the stream.
func (j *Job) Emit(ev Event) {
	j.mu.Lock()
	j.appendLocked(ev)
	j.mu.Unlock()
}

// EventsSince blocks until an event with seq >= from exists or the job
// reaches a terminal state, then returns the suffix. A (nil, false)
// return means the stream is complete.
func (j *Job) EventsSince(from int) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= from && !j.state.Terminal() {
		j.cond.Wait()
	}
	if len(j.events) <= from {
		return nil, false
	}
	out := make([]Event, len(j.events)-from)
	copy(out, j.events[from:])
	return out, true
}

// Wait blocks until the job reaches a terminal state (or Parked after a
// drain) and returns its result and error.
func (j *Job) Wait() (*JobResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for !j.state.Terminal() && j.state != StateParked {
		j.cond.Wait()
	}
	return j.result, j.err
}

// Status is the JSON view served at GET /v1/jobs/{id}.
type Status struct {
	ID        string     `json:"id"`
	Tenant    string     `json:"tenant"`
	Priority  int        `json:"priority"`
	Molecule  string     `json:"molecule"`
	Basis     string     `json:"basis"`
	State     string     `json:"state"`
	NumBF     int        `json:"num_basis_funcs"`
	Retries   int        `json:"retries"`
	Submitted time.Time  `json:"submitted"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
}

// Status snapshots the job for the HTTP API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, Tenant: j.Spec.Tenant, Priority: j.Spec.Priority,
		Molecule: j.Spec.Molecule, Basis: j.Spec.Basis,
		State: j.state.String(), NumBF: j.NumBF, Retries: j.retries,
		Submitted: j.submitted, Result: j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
