package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gtfock/internal/metrics"
)

// gate is a stub runner: jobs block until released (or their ctx is
// canceled), so tests control exactly which slots are busy.
type gate struct {
	release  chan struct{}
	attempts atomic.Int64
}

func newGate() *gate { return &gate{release: make(chan struct{})} }

func (g *gate) Run(ctx context.Context, j *Job) (*JobResult, error) {
	g.attempts.Add(1)
	select {
	case <-g.release:
		return &JobResult{Converged: true, Energy: -1}, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("stub: %w", context.Cause(ctx))
	}
}

func stubEstimate(JobSpec) (int, error) { return 10, nil }

func newTestServer(t *testing.T, cfg Config) (*Server, *metrics.Serve) {
	t.Helper()
	sm := metrics.NewServe()
	cfg.Metrics = sm
	cfg.Estimate = stubEstimate
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, sm
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
}

// Overload is refused explicitly and immediately: the queue bound and
// the memory budget both produce RejectError well inside the 100ms SLO,
// and a freed slot restores admission.
func TestAdmissionRejectsExplicitly(t *testing.T) {
	g := newGate()
	s, sm := newTestServer(t, Config{Capacity: 1, MaxQueue: 2, Runner: g})

	var jobs []*Job
	for i := 0; i < 3; i++ { // 1 running + 2 queued
		j, err := s.Submit(JobSpec{Molecule: "CH4"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	t0 := time.Now()
	_, err := s.Submit(JobSpec{Molecule: "CH4"})
	lat := time.Since(t0)
	if !IsReject(err) {
		t.Fatalf("4th submit: %v, want RejectError", err)
	}
	if lat > 100*time.Millisecond {
		t.Fatalf("rejection took %v, want < 100ms", lat)
	}
	if snap := sm.Snapshot(); snap.RejectedQueue != 1 || snap.QueueHighWater != 2 {
		t.Fatalf("snapshot %+v, want 1 queue reject, high water 2", snap)
	}

	close(g.release) // everything completes; admission reopens
	for _, j := range jobs {
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
	}
	if _, err := s.Submit(JobSpec{Molecule: "CH4"}); err != nil {
		t.Fatalf("post-drain submit rejected: %v", err)
	}
}

func TestMemoryBudgetRejects(t *testing.T) {
	g := newGate()
	// Each stub job charges jobBytes(10); budget fits exactly two.
	s, sm := newTestServer(t, Config{Capacity: 4, MemBudget: 2 * jobBytes(10), Runner: g})
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Molecule: "CH4"}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit(JobSpec{Molecule: "CH4"})
	var re *RejectError
	if !errors.As(err, &re) || re.Cause != metrics.RejectMemory {
		t.Fatalf("over-budget submit: %v, want memory rejection", err)
	}
	if snap := sm.Snapshot(); snap.RejectedMem != 1 {
		t.Fatalf("rejected_mem = %d, want 1", snap.RejectedMem)
	}
	close(g.release)
}

// Deadlines cancel both queued and running jobs with an explicit
// Canceled terminal state, releasing their memory charge.
func TestDeadlineCancels(t *testing.T) {
	g := newGate()
	s, _ := newTestServer(t, Config{Capacity: 1, Runner: g})
	running, err := s.Submit(JobSpec{Molecule: "CH4", DeadlineMs: 40})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{Molecule: "CH4", DeadlineMs: 40})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateCanceled)
	waitState(t, queued, StateCanceled)
	if _, jerr := running.Result(); !errors.Is(jerr, ErrDeadline) {
		t.Fatalf("running job error %v, want ErrDeadline", jerr)
	}
	if s.MemUsed() != 0 {
		t.Fatalf("memory charge %d not released", s.MemUsed())
	}
	close(g.release)
}

func TestClientCancel(t *testing.T) {
	g := newGate()
	s, _ := newTestServer(t, Config{Capacity: 1, Runner: g})
	j, err := s.Submit(JobSpec{Molecule: "CH4"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	j.Cancel()
	waitState(t, j, StateCanceled)
	close(g.release)
}

// Preemption: a higher-priority arrival parks the lowest-priority
// running job, which re-queues and finishes after the VIP.
func TestPreemptionParksAndResumes(t *testing.T) {
	g := newGate()
	s, sm := newTestServer(t, Config{Capacity: 1, Preempt: true, Runner: g})
	lo, err := s.Submit(JobSpec{Molecule: "CH4", Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, lo, StateRunning)
	hi, err := s.Submit(JobSpec{Molecule: "CH4", Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hi, StateRunning)
	close(g.release)
	waitState(t, hi, StateDone)
	waitState(t, lo, StateDone)
	if snap := sm.Snapshot(); snap.Parked != 1 || snap.Resumed != 1 {
		t.Fatalf("parked/resumed = %d/%d, want 1/1", snap.Parked, snap.Resumed)
	}
	if g.attempts.Load() != 3 {
		t.Fatalf("runner attempts = %d, want 3 (lo, hi, lo-resume)", g.attempts.Load())
	}
}

// Equal or lower priority must NOT preempt.
func TestNoPreemptionWithoutRank(t *testing.T) {
	g := newGate()
	s, sm := newTestServer(t, Config{Capacity: 1, Preempt: true, Runner: g})
	first, _ := s.Submit(JobSpec{Molecule: "CH4", Priority: 1})
	waitState(t, first, StateRunning)
	s.Submit(JobSpec{Molecule: "CH4", Priority: 1})
	time.Sleep(20 * time.Millisecond)
	if first.State() != StateRunning {
		t.Fatalf("equal-priority arrival disturbed the running job: %s", first.State())
	}
	if snap := sm.Snapshot(); snap.Parked != 0 {
		t.Fatal("parked an equal-priority job")
	}
	close(g.release)
}

// Drain: admission stops, queued and running jobs park, and the call
// returns once the executor is empty.
func TestDrainParksEverything(t *testing.T) {
	g := newGate()
	s, sm := newTestServer(t, Config{Capacity: 1, Runner: g})
	running, _ := s.Submit(JobSpec{Molecule: "CH4"})
	queued, _ := s.Submit(JobSpec{Molecule: "CH4"})
	waitState(t, running, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateParked)
	waitState(t, queued, StateParked)
	if _, err := s.Submit(JobSpec{Molecule: "CH4"}); !IsReject(err) {
		t.Fatalf("submit during drain: %v, want rejection", err)
	}
	if snap := sm.Snapshot(); snap.Parked != 2 {
		t.Fatalf("parked = %d, want 2", snap.Parked)
	}
	if s.MemUsed() != 0 {
		t.Fatalf("drained server still charges %d bytes", s.MemUsed())
	}
}

// Events stream in order and terminate with the terminal state.
func TestEventStream(t *testing.T) {
	g := newGate()
	s, _ := newTestServer(t, Config{Capacity: 1, Runner: g})
	j, _ := s.Submit(JobSpec{Molecule: "CH4"})
	close(g.release)
	waitState(t, j, StateDone)
	var types []string
	for from := 0; ; {
		evs, ok := j.EventsSince(from)
		if !ok {
			break
		}
		for _, ev := range evs {
			types = append(types, ev.Type)
		}
		from += len(evs)
	}
	if len(types) < 3 || types[0] != "queued" || types[len(types)-1] != "done" {
		t.Fatalf("event stream %v, want queued ... done", types)
	}
}
