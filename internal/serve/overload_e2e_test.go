package serve

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"gtfock/internal/chem"
	"gtfock/internal/metrics"
	netga "gtfock/internal/net"
	"gtfock/internal/scf"
)

// TestOverloadEndToEnd is the acceptance criterion of the HF service:
// with executor capacity K, a burst of 4x the admission capacity sees
//
//   - every ACCEPTED job complete with an energy matching a solo
//     in-process run to 1e-9,
//   - every rejected job get an explicit 503-style error within 100ms,
//   - a job disrupted by a shard kill+restart injected mid-SCF retry
//     under a fresh session and still land on the solo energy,
//   - the queue depth stay bounded and the daemon's heap stay bounded
//     (admission control, not OOM, absorbs the overload).
//
// The whole test runs under -race in CI (make serve-test).
func TestOverloadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("overload e2e in short mode")
	}
	const (
		capacity = 2
		maxQueue = 8
		nburst   = 4 * (capacity + maxQueue) // 4x admission capacity
	)

	// Shared fleet: two multi-session shards on loopback.
	addrs := make([]string, 2)
	servers := make([]*netga.MultiServer, 2)
	for i := range servers {
		ms, err := netga.NewMultiServer(2, i, 256, 256<<20)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := ms.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i], servers[i] = addr, ms
	}
	defer func() {
		for _, ms := range servers {
			ms.Close()
		}
	}()

	// Solo references: same molecules, same SCF options, no service.
	refs := map[string]float64{}
	for _, m := range []string{"H2", "CH4"} {
		mol, err := chem.ParseSpec(m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := scf.RunHF(mol, scf.Options{BasisName: "sto-3g", MaxIter: 40})
		if err != nil || !res.Converged {
			t.Fatalf("solo reference %s: %v", m, err)
		}
		refs[m] = res.Energy
	}

	sm := metrics.NewServe()
	runner := NewFleetRunner(addrs, t.TempDir())
	runner.Prow, runner.Pcol = 1, 2 // proc 0 -> shard 0, proc 1 -> shard 1
	runner.RetryMax = 6
	runner.RPC = &metrics.RPC{}
	runner.Serve = sm
	s, err := NewServer(Config{
		Capacity: capacity, MaxQueue: maxQueue, MemBudget: 64 << 20,
		Tenants: map[string]TenantConfig{"A": {Weight: 3}, "B": {Weight: 1}},
		Runner:  runner, Metrics: sm,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The burst: 4x admission capacity across two tenants, all at one
	// priority so the shed ladder stays out of play — accepted means
	// "will complete", full means an explicit immediate rejection.
	type submitted struct {
		j        *Job
		rejected bool
		rejectMs float64
	}
	results := make([]submitted, nburst)
	var wg sync.WaitGroup
	for i := 0; i < nburst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := JobSpec{
				Tenant:   map[bool]string{true: "A", false: "B"}[i%4 != 0],
				Molecule: map[bool]string{true: "H2", false: "CH4"}[i%3 != 0],
				Basis:    "sto-3g",
				MaxIter:  40,
			}
			t0 := time.Now()
			j, err := s.Submit(spec)
			lat := float64(time.Since(t0).Nanoseconds()) / 1e6
			if err != nil {
				if !IsReject(err) {
					t.Errorf("submit %d: non-reject error %v", i, err)
				}
				results[i] = submitted{rejected: true, rejectMs: lat}
				return
			}
			results[i] = submitted{j: j}
		}(i)
	}
	wg.Wait()

	// Chaos: a dedicated CH4 job, admitted as soon as the queue has room.
	// The moment its first SCF iteration streams (it is mid-run, its shard
	// sessions live, many iterations to go), kill shard 0 and restart it
	// on the same address: the restarted shard has forgotten the session,
	// the job's next build fails deterministically, and the job must
	// retry from its checkpoint under a fresh session — and still land on
	// the solo energy.
	var chaos *Job
	for {
		chaos, err = s.Submit(JobSpec{Tenant: "A", Molecule: "CH4", Basis: "sto-3g", MaxIter: 40})
		if err == nil {
			break
		}
		if !IsReject(err) {
			t.Fatalf("chaos submit: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !waitIteration(t, chaos, 60*time.Second) {
		t.Fatal("chaos job finished or stalled before its first iteration event")
	}
	servers[0].Kill()
	ms, err := netga.NewMultiServer(2, 0, 256, 256<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Start(addrs[0]); err != nil {
		t.Fatalf("restart shard 0: %v", err)
	}
	servers[0] = ms

	deadline := time.Now().Add(4 * time.Minute)
	chaosRes, err := waitDone(t, chaos, deadline)
	if err != nil {
		t.Fatalf("chaos job: %v", err)
	}
	if chaosRes.Retries == 0 {
		t.Error("chaos job finished with 0 retries; the shard kill disrupted nothing")
	}
	if d := math.Abs(chaosRes.Energy - refs["CH4"]); d > 1e-9 {
		t.Errorf("chaos job energy off solo reference by %g after retry", d)
	}

	// Every accepted burst job must reach Done with the right energy —
	// no losses, no hangs, kill or no kill.
	accepted, rejected := 0, 0
	for i, r := range results {
		if r.rejected {
			rejected++
			if r.rejectMs > 100 {
				t.Errorf("rejection %d took %.1fms, want < 100ms", i, r.rejectMs)
			}
			continue
		}
		accepted++
		res, jerr := waitDone(t, r.j, deadline)
		if jerr != nil {
			t.Errorf("accepted job %s (%s): %v", r.j.ID, r.j.Spec.Molecule, jerr)
			continue
		}
		if !res.Converged {
			t.Errorf("job %s did not converge", r.j.ID)
		}
		if d := math.Abs(res.Energy - refs[r.j.Spec.Molecule]); d > 1e-9 {
			t.Errorf("job %s (%s): energy off solo reference by %g", r.j.ID, r.j.Spec.Molecule, d)
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("burst split accepted=%d rejected=%d; want both nonzero", accepted, rejected)
	}

	snap := sm.Snapshot()
	if snap.QueueHighWater > maxQueue {
		t.Errorf("queue high water %d exceeded bound %d", snap.QueueHighWater, maxQueue)
	}
	if got := s.MemUsed(); got != 0 {
		t.Errorf("memory charge %d after all jobs terminal, want 0", got)
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	if mem.HeapAlloc > 1<<30 {
		t.Errorf("heap %d bytes after overload burst; admission failed to bound memory", mem.HeapAlloc)
	}
	t.Logf("burst %d: accepted %d, rejected %d, chaos-job retries %d, queue high water %d, heap %.1f MB",
		nburst, accepted, rejected, chaosRes.Retries, snap.QueueHighWater, float64(mem.HeapAlloc)/(1<<20))
}

// waitIteration blocks until j streams its first per-iteration progress
// event; false if j went terminal (or the timeout expired) first.
func waitIteration(t *testing.T, j *Job, d time.Duration) bool {
	t.Helper()
	found := make(chan bool, 1)
	go func() {
		for from := 0; ; {
			evs, ok := j.EventsSince(from)
			for _, ev := range evs {
				if ev.Type == "iteration" {
					found <- true
					return
				}
			}
			from += len(evs)
			if !ok {
				found <- false
				return
			}
		}
	}()
	select {
	case v := <-found:
		return v
	case <-time.After(d):
		return false
	}
}

func waitDone(t *testing.T, j *Job, deadline time.Time) (*JobResult, error) {
	t.Helper()
	for time.Now().Before(deadline) {
		if st := j.State(); st.Terminal() {
			return j.Result()
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal before deadline (state %s)", j.ID, j.State())
	return nil, nil
}
