package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gtfock/internal/metrics"
)

// Registry is the HA service tier's replicated job registry: the single
// source of truth for every job's spec, tenant, priority, latest
// checkpoint pointer, ownership lease and terminal outcome, shared by N
// hfd front-end peers (DESIGN.md §13).
//
// Ownership is a heartbeat-refreshed, incarnation-fenced lease modeled
// on the shard fleet's membership leases (internal/net/fleet.go): every
// ownership change bumps the record's fence, and every owner-side write
// (renew, checkpoint update, finish) must present the owner id,
// incarnation AND fence it acquired under. A peer that lost its lease —
// because it crashed and was adopted, or because it stalled long enough
// for the failure detector to act — therefore cannot renew, cannot
// finish, and cannot resurrect: the fence rejects the loser's session.
//
// Expiry is deterministic: a lease is orphaned only once its expiry has
// passed by the registry's clock (injectable, so the unit suite drives
// it like fleet_test.go drives the fleet's), never on a missed packet.
//
// Durability reuses the PR 5 journal discipline (internal/net/journal.go):
// ownership changes and terminal outcomes are appended — and fsynced —
// to a crc-framed write-ahead log before they take effect, with periodic
// atomic snapshots truncating the log. Heartbeat renewals are in-memory
// only: on a registry restart every lease is conservatively expired, so
// the surviving peers re-adopt; what must never survive a crash wrongly
// is the fence sequence, and that is journaled. Like the PR 6 fleet
// coordinator, the registry is one process — its crash pauses adoption
// but loses nothing, and a restart recovers from snapshot + journal.
type Registry struct {
	cfg RegistryConfig
	met *metrics.Serve

	mu      sync.Mutex
	jobs    map[string]*JobRecord
	nextID  uint64
	wal     *os.File
	walOff  int64
	walBuf  []byte
	appends int
	failed  bool // a failed append could not be rolled back

	creates, acquires, expiries, finishes, fenceRejects int64
}

// RegistryConfig tunes a Registry.
type RegistryConfig struct {
	// LeaseTTL is how long a job stays owned without a heartbeat
	// (default 1.5s). Peers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// SnapshotEvery bounds journal growth: a snapshot is written and the
	// journal truncated every N appends (default 256).
	SnapshotEvery int
	// Clock is the lease failure detector's time source (default
	// time.Now); injectable so expiry tests are deterministic.
	Clock func() time.Time
	// NoSync skips the per-append fsync (tests only).
	NoSync bool
	// Metrics, when non-nil, receives AddLeaseExpiry for every lease the
	// registry expires.
	Metrics *metrics.Serve
}

// Registry job states. Live scheduling detail (queued vs running vs
// parked) belongs to the owning peer and is reached by redirect; the
// registry tracks only what must survive that peer: active vs terminal.
const (
	RecActive   = "active"
	RecDone     = "done"
	RecFailed   = "failed"
	RecCanceled = "canceled"
	RecShed     = "shed"
	RecRejected = "rejected" // registered, then refused by local admission
)

// JobRecord is one job's registry entry.
type JobRecord struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
	// Ckpt is the job's checkpoint pointer: the path (in the fleet-shared
	// checkpoint directory) an adopter resumes from. CkptIter is the last
	// iteration known to have checkpointed (advisory; the file is the
	// ground truth).
	Ckpt     string `json:"ckpt,omitempty"`
	CkptIter int    `json:"ckpt_iter,omitempty"`

	State string `json:"state"`

	// Ownership lease. Fence increments on every acquisition; Owner and
	// OwnerInc identify the holder's identity and process incarnation.
	// LeaseExpiry is unix-ns by the registry clock and deliberately NOT
	// durable: a restarted registry expires everything.
	Owner       string `json:"owner,omitempty"`
	OwnerAddr   string `json:"owner_addr,omitempty"`
	OwnerInc    uint64 `json:"owner_inc,omitempty"`
	Fence       uint64 `json:"fence"`
	LeaseExpiry int64  `json:"-"`

	Adoptions int `json:"adoptions,omitempty"` // ownership changes after the first

	Result *JobResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// Terminal reports whether the record reached a terminal state.
func (r *JobRecord) Terminal() bool { return r.State != RecActive }

// Registry lease errors. The HTTP layer maps them to stable reason
// strings and the client maps them back, so errors.Is works end-to-end.
var (
	ErrUnknownJob = errors.New("serve: registry: unknown job")
	ErrLeaseHeld  = errors.New("serve: registry: lease held by another peer")
	ErrFenceLost  = errors.New("serve: registry: lease fence lost")
	ErrTerminal   = errors.New("serve: registry: job already terminal")
)

const (
	regWALFile  = "registry.wal"
	regSnapFile = "registry.snapshot.json"
)

// walRec is one journal record: a full-record upsert plus the id
// allocator, so replay is order-insensitive per job and idempotent.
type walRec struct {
	Rec    *JobRecord `json:"rec"`
	NextID uint64     `json:"next_id"`
}

type regSnapshot struct {
	NextID uint64       `json:"next_id"`
	Jobs   []*JobRecord `json:"jobs"`
}

// NewRegistry builds an in-memory registry (no journal, no snapshot):
// the deterministic substrate for the fake-clock lease unit suite, and
// for callers that accept losing the registry with the process.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 1500 * time.Millisecond
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 256
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Registry{cfg: cfg, met: cfg.Metrics, jobs: map[string]*JobRecord{}}
}

// OpenRegistry opens (creating if needed) a registry rooted at dir,
// recovering snapshot + journal state. Recovered leases are expired:
// whoever owned a job before the registry restarted must re-acquire it
// through the normal adoption path.
func OpenRegistry(dir string, cfg RegistryConfig) (*Registry, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 1500 * time.Millisecond
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 256
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := &Registry{cfg: cfg, met: cfg.Metrics, jobs: map[string]*JobRecord{}}
	good, err := r.recover(dir)
	if err != nil {
		return nil, err
	}
	// Cut any torn tail back to the intact prefix BEFORE opening for
	// append (mirroring internal/net/journal.go's 'good' handling):
	// otherwise new fsynced records land after the tear, and the next
	// restart's replay — which stops at the tear — silently drops them.
	walPath := filepath.Join(dir, regWALFile)
	if st, err := os.Stat(walPath); err == nil {
		if st.Size() > good {
			if err := os.Truncate(walPath, good); err != nil {
				return nil, err
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	r.wal, r.walOff = wal, good
	return r, nil
}

// recover loads the snapshot (if any) and replays the journal suffix. A
// torn tail — partial final record or crc mismatch from a crash
// mid-append — terminates replay without error: everything before it was
// fsynced, the torn record was never acknowledged. good is the byte
// length of the intact prefix; the caller truncates the journal to it so
// fresh appends extend the intact log instead of hiding behind the tear.
func (r *Registry) recover(dir string) (good int64, err error) {
	if blob, err := os.ReadFile(filepath.Join(dir, regSnapFile)); err == nil {
		var snap regSnapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			return 0, fmt.Errorf("serve: registry snapshot: %w", err)
		}
		r.nextID = snap.NextID
		for _, rec := range snap.Jobs {
			r.jobs[rec.ID] = rec
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return 0, err
	}
	f, err := os.Open(filepath.Join(dir, regWALFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	br := io.Reader(f)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return good, nil // clean end or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > 16<<20 {
			return good, nil
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return good, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != crc {
			return good, nil // torn record
		}
		var rec walRec
		if err := json.Unmarshal(body, &rec); err != nil {
			return good, nil // undecodable yet checksummed: treat as torn
		}
		if rec.Rec != nil {
			r.jobs[rec.Rec.ID] = rec.Rec
		}
		if rec.NextID > r.nextID {
			r.nextID = rec.NextID
		}
		good += int64(len(hdr)) + int64(n)
	}
}

// appendLocked journals one record durably before the mutation becomes
// visible. Mirrors internal/net/journal.go: a failed write rolls the
// file back to the pre-append offset, or marks the log failed so nothing
// appends past hidden damage. Caller holds r.mu.
func (r *Registry) appendLocked(rec *JobRecord) error {
	if r.wal == nil {
		return nil // in-memory registry (unit tests)
	}
	if r.failed {
		return errors.New("serve: registry journal damaged by an earlier failed append")
	}
	body, err := json.Marshal(walRec{Rec: rec, NextID: r.nextID})
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	werr := func() error {
		if _, err := r.wal.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := r.wal.Write(body); err != nil {
			return err
		}
		if r.cfg.NoSync {
			return nil
		}
		return r.wal.Sync()
	}()
	if werr != nil {
		if terr := r.wal.Truncate(r.walOff); terr != nil {
			r.failed = true
		}
		return werr
	}
	r.walOff += int64(len(hdr)) + int64(len(body))
	r.appends++
	if r.appends >= r.cfg.SnapshotEvery {
		r.snapshotLocked()
	}
	return nil
}

// snapshotLocked writes an atomic full-state snapshot and truncates the
// journal. The snapshot file and its directory are fsynced before the
// truncate (as in internal/net/journal.go's writeSnapshot): the journal
// is the only copy of the state until the snapshot is durable, so cutting
// it on the strength of an unsynced rename could lose both to a power
// cut. Best effort: any failed step leaves the journal in place.
func (r *Registry) snapshotLocked() {
	dir := filepath.Dir(r.wal.Name())
	snap := regSnapshot{NextID: r.nextID, Jobs: make([]*JobRecord, 0, len(r.jobs))}
	for _, rec := range r.jobs {
		snap.Jobs = append(snap.Jobs, rec)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, regSnapFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if !r.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, filepath.Join(dir, regSnapFile)); err != nil {
		os.Remove(tmp)
		return
	}
	if !r.cfg.NoSync {
		d, err := os.Open(dir)
		if err != nil {
			return
		}
		serr := d.Sync()
		d.Close()
		if serr != nil {
			return
		}
	}
	if err := r.wal.Truncate(0); err != nil {
		r.failed = true
		return
	}
	if _, err := r.wal.Seek(0, io.SeekStart); err != nil {
		r.failed = true
		return
	}
	r.walOff, r.appends, r.failed = 0, 0, false
}

// Close snapshots and releases the journal.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wal == nil {
		return nil
	}
	r.snapshotLocked()
	err := r.wal.Close()
	r.wal = nil
	return err
}

// Create registers a new job owned by the submitting peer: the accepting
// front end takes the lease immediately, so a job is covered from the
// moment it is accepted — queued jobs on a crashed peer are adoptable
// exactly like running ones. ckptDir is the fleet-shared checkpoint
// directory; the record's checkpoint pointer follows the FleetRunner
// convention <ckptDir>/<id>.ckpt. Returns the global job id and the
// fence the owner must present on every subsequent write.
func (r *Registry) Create(spec JobSpec, owner, ownerAddr string, inc uint64, ckptDir string) (string, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	id := fmt.Sprintf("j-%06d", r.nextID)
	ckpt := ""
	if ckptDir != "" {
		ckpt = filepath.Join(ckptDir, id+".ckpt")
	}
	rec := &JobRecord{
		ID: id, Spec: spec, Ckpt: ckpt, State: RecActive,
		Owner: owner, OwnerAddr: ownerAddr, OwnerInc: inc, Fence: 1,
		LeaseExpiry: r.cfg.Clock().Add(r.cfg.LeaseTTL).UnixNano(),
	}
	if err := r.appendLocked(rec); err != nil {
		r.nextID--
		return "", 0, err
	}
	r.jobs[id] = rec
	r.creates++
	return id, 1, nil
}

// Heartbeat renews every lease in held (job id -> fence) that the
// (owner, inc) pair still holds, and returns the ids it no longer does —
// the peer must stop executing those: another peer adopted them, and the
// fence will reject any write from the superseded session.
func (r *Registry) Heartbeat(owner string, inc uint64, held map[string]uint64) (lost []string) {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, fence := range held {
		rec := r.jobs[id]
		if rec == nil || rec.Terminal() ||
			rec.Owner != owner || rec.OwnerInc != inc || rec.Fence != fence {
			lost = append(lost, id)
			continue
		}
		rec.LeaseExpiry = now.Add(r.cfg.LeaseTTL).UnixNano()
	}
	sort.Strings(lost)
	return lost
}

// Acquire takes an expired (or never-held) lease. Exactly one of N
// racing peers wins: acquisitions are serialized under the registry
// lock, the winner bumps the fence, and every later attempt sees a fresh
// unexpired lease and fails with ErrLeaseHeld.
func (r *Registry) Acquire(id, owner, ownerAddr string, inc uint64) (JobRecord, error) {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.jobs[id]
	if rec == nil {
		return JobRecord{}, ErrUnknownJob
	}
	if rec.Terminal() {
		return JobRecord{}, ErrTerminal
	}
	if rec.Owner != "" && rec.LeaseExpiry > now.UnixNano() {
		return JobRecord{}, fmt.Errorf("%w (owner %s)", ErrLeaseHeld, rec.Owner)
	}
	expired := rec.Owner != ""
	prev := *rec
	rec.Owner, rec.OwnerAddr, rec.OwnerInc = owner, ownerAddr, inc
	rec.Fence++
	if expired {
		rec.Adoptions++
	}
	rec.LeaseExpiry = now.Add(r.cfg.LeaseTTL).UnixNano()
	if err := r.appendLocked(rec); err != nil {
		*rec = prev
		return JobRecord{}, err
	}
	r.acquires++
	if expired {
		r.expiries++
		r.met.AddLeaseExpiry()
	}
	return *rec, nil
}

// Release gives up ownership without a terminal outcome (graceful drain:
// the peer parked the job with its checkpoint on disk). The job becomes
// immediately adoptable. ids == nil releases everything (owner, inc)
// holds. Returns the released ids.
func (r *Registry) Release(owner string, inc uint64, ids []string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var released []string
	match := func(rec *JobRecord) bool {
		return !rec.Terminal() && rec.Owner == owner && rec.OwnerInc == inc
	}
	if ids == nil {
		for id, rec := range r.jobs {
			if match(rec) {
				ids = append(ids, id)
			}
		}
	}
	for _, id := range ids {
		rec := r.jobs[id]
		if rec == nil || !match(rec) {
			continue
		}
		prev := *rec
		rec.Owner, rec.OwnerAddr, rec.OwnerInc, rec.LeaseExpiry = "", "", 0, 0
		if err := r.appendLocked(rec); err != nil {
			*rec = prev
			continue
		}
		released = append(released, id)
	}
	sort.Strings(released)
	return released
}

// UpdateCkpt advances the job's checkpoint pointer (advisory, in-memory;
// the checkpoint file itself is the durable artifact). Fence-checked so
// a superseded owner cannot move the pointer backward under the adopter.
func (r *Registry) UpdateCkpt(id, owner string, inc, fence uint64, iter int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.jobs[id]
	if rec == nil {
		return ErrUnknownJob
	}
	if rec.Owner != owner || rec.OwnerInc != inc || rec.Fence != fence {
		r.fenceRejects++
		return ErrFenceLost
	}
	if iter > rec.CkptIter {
		rec.CkptIter = iter
	}
	return nil
}

// Finish records a terminal outcome. Fence-checked: only the current
// lease holder's session may finish the job, so the loser of an adoption
// race cannot overwrite the winner's result — at-most-once outcome
// recording, on top of the fresh-session exactly-once accumulation.
func (r *Registry) Finish(id, owner string, inc, fence uint64, state string, res *JobResult, errMsg string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.jobs[id]
	if rec == nil {
		return ErrUnknownJob
	}
	if rec.Terminal() {
		return ErrTerminal
	}
	if rec.Owner != owner || rec.OwnerInc != inc || rec.Fence != fence {
		r.fenceRejects++
		return ErrFenceLost
	}
	prev := *rec
	rec.State = state
	rec.Result, rec.Error = res, errMsg
	rec.Owner, rec.OwnerAddr, rec.OwnerInc, rec.LeaseExpiry = "", "", 0, 0
	if err := r.appendLocked(rec); err != nil {
		*rec = prev
		return err
	}
	r.finishes++
	return nil
}

// Orphans lists active jobs with no live lease — unowned, or expired by
// the registry clock. This is what each peer's adoption scanner polls.
func (r *Registry) Orphans() []JobRecord {
	now := r.cfg.Clock().UnixNano()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []JobRecord
	for _, rec := range r.jobs {
		if !rec.Terminal() && (rec.Owner == "" || rec.LeaseExpiry <= now) {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns a copy of one record.
func (r *Registry) Get(id string) (JobRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.jobs[id]
	if rec == nil {
		return JobRecord{}, false
	}
	return *rec, true
}

// List returns copies of all records, id-sorted.
func (r *Registry) List() []JobRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobRecord, 0, len(r.jobs))
	for _, rec := range r.jobs {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RegistryStats is a point-in-time snapshot of the registry counters.
// LeaseTTL advertises the registry's actual TTL so joining peers derive
// their heartbeat cadence from it instead of trusting their own flags.
type RegistryStats struct {
	Jobs         int           `json:"jobs"`
	Active       int           `json:"active"`
	Owned        int           `json:"owned"`
	Creates      int64         `json:"creates"`
	Acquires     int64         `json:"acquires"`
	Expiries     int64         `json:"lease_expiries"`
	Finishes     int64         `json:"finishes"`
	FenceRejects int64         `json:"fence_rejects"`
	LeaseTTL     time.Duration `json:"lease_ttl_ns"`
}

// Stats snapshots the registry.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RegistryStats{
		Jobs: len(r.jobs), Creates: r.creates, Acquires: r.acquires,
		Expiries: r.expiries, Finishes: r.finishes, FenceRejects: r.fenceRejects,
		LeaseTTL: r.cfg.LeaseTTL,
	}
	for _, rec := range r.jobs {
		if !rec.Terminal() {
			st.Active++
			if rec.Owner != "" {
				st.Owned++
			}
		}
	}
	return st
}
