package props

import (
	"math"
	"testing"

	"gtfock/internal/chem"
	"gtfock/internal/integrals"
	"gtfock/internal/scf"
)

func converge(t *testing.T, mol *chem.Molecule, basisName string) *scf.Result {
	t.Helper()
	res, err := scf.RunHF(mol, scf.Options{BasisName: basisName})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SCF did not converge")
	}
	return res
}

// Symmetric molecules have zero dipole.
func TestDipoleVanishesBySymmetry(t *testing.T) {
	for _, mol := range []*chem.Molecule{chem.Hydrogen2(0), chem.Methane()} {
		res := converge(t, mol, "sto-3g")
		mu := Dipole(res.Basis, res.D, chem.Vec3{})
		if mu.Norm() > 1e-5 {
			t.Fatalf("%s dipole = %v, want 0", mol.Formula(), mu)
		}
	}
}

// For a neutral molecule the total dipole is origin-independent.
func TestDipoleOriginIndependent(t *testing.T) {
	// Distorted methane: one stretched C-H bond gives a nonzero dipole.
	mol := chem.Methane()
	mol.Atoms[1].Pos = mol.Atoms[1].Pos.Scale(1.3)
	res := converge(t, mol, "sto-3g")
	mu1 := Dipole(res.Basis, res.D, chem.Vec3{})
	mu2 := Dipole(res.Basis, res.D, chem.Vec3{X: 3, Y: -1, Z: 2})
	if mu1.Sub(mu2).Norm() > 1e-7 {
		t.Fatalf("dipole origin-dependent: %v vs %v", mu1, mu2)
	}
	if mu1.Norm() < 1e-3 {
		t.Fatal("distorted methane should have a dipole")
	}
	// The dipole must point along the distortion axis (the stretched bond).
	axis := mol.Atoms[1].Pos.Unit()
	cos := mu1.Unit().Dot(axis)
	if math.Abs(math.Abs(cos)-1) > 1e-6 {
		t.Fatalf("dipole not along stretched bond: cos = %v", cos)
	}
}

// Mulliken charges must sum to the molecular charge (0) and show C
// negative / H positive in methane (carbon is more electronegative).
func TestMullikenMethane(t *testing.T) {
	mol := chem.Methane()
	res := converge(t, mol, "sto-3g")
	s := integrals.Overlap(res.Basis)
	q, err := Mulliken(res.Basis, res.D, s)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range q {
		total += v
	}
	if math.Abs(total) > 1e-8 {
		t.Fatalf("charges sum to %g, want 0", total)
	}
	if q[0] >= 0 {
		t.Fatalf("carbon charge %g, want negative", q[0])
	}
	for i := 1; i < 5; i++ {
		if q[i] <= 0 {
			t.Fatalf("hydrogen %d charge %g, want positive", i, q[i])
		}
		if math.Abs(q[i]-q[1]) > 1e-8 {
			t.Fatal("equivalent hydrogens have different charges")
		}
	}
}

// Gross populations complement the charges and sum to the electron count.
func TestGrossPopulations(t *testing.T) {
	mol := chem.Hydrogen2(0)
	res := converge(t, mol, "cc-pvdz")
	s := integrals.Overlap(res.Basis)
	pops, err := GrossPopulations(res.Basis, res.D, s)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range pops {
		total += p
	}
	if math.Abs(total-2) > 1e-8 {
		t.Fatalf("populations sum to %g, want 2", total)
	}
	if math.Abs(pops[0]-pops[1]) > 1e-8 {
		t.Fatal("H2 atoms must have equal populations")
	}
}

// Homonuclear H2 in a balanced basis: each atom holds one electron.
func TestMullikenH2Split(t *testing.T) {
	mol := chem.Hydrogen2(0)
	res := converge(t, mol, "sto-3g")
	s := integrals.Overlap(res.Basis)
	q, err := Mulliken(res.Basis, res.D, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range q {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("H2 charge %g, want 0", v)
		}
	}
}

func TestMullikenShapeError(t *testing.T) {
	mol := chem.Hydrogen2(0)
	res := converge(t, mol, "sto-3g")
	s := integrals.Overlap(res.Basis)
	bad := s.Clone()
	bad.Rows = 1 // deliberately inconsistent
	if _, err := Mulliken(res.Basis, bad, s); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}
