// Package props computes molecular properties from a converged SCF
// density: the dipole moment and Mulliken population analysis. These are
// the standard first consumers of the Fock/density machinery and serve as
// end-to-end checks that the density is physically sensible.
package props

import (
	"fmt"

	"gtfock/internal/basis"
	"gtfock/internal/chem"
	"gtfock/internal/integrals"
	"gtfock/internal/linalg"
)

// Dipole returns the total dipole moment (atomic units, e*bohr) of a
// molecule with physical density d (D = 2 C_occ C_occ^T for closed
// shells): mu = sum_A Z_A (R_A - o) - Tr(D M) with M the dipole integrals
// about origin o. For a neutral molecule the result is independent of o.
func Dipole(bs *basis.Set, d *linalg.Matrix, origin chem.Vec3) chem.Vec3 {
	mol := bs.Mol
	m := integrals.Dipole(bs, origin)
	var mu chem.Vec3
	for _, a := range mol.Atoms {
		mu = mu.Add(a.Pos.Sub(origin).Scale(float64(a.Z)))
	}
	mu.X -= linalg.TraceMul(d, m[0])
	mu.Y -= linalg.TraceMul(d, m[1])
	mu.Z -= linalg.TraceMul(d, m[2])
	return mu
}

// DebyePerAU converts a dipole moment from atomic units to Debye.
const DebyePerAU = 2.541746473

// Mulliken returns per-atom Mulliken charges q_A = Z_A - sum_{i in A}
// (D S)_{ii}, given the physical density d and overlap s. Charges sum to
// the total molecular charge (zero for the neutral molecules here).
func Mulliken(bs *basis.Set, d, s *linalg.Matrix) ([]float64, error) {
	mol := bs.Mol
	n := bs.NumFuncs
	if d.Rows != n || s.Rows != n {
		return nil, fmt.Errorf("props: matrix size mismatch with basis")
	}
	// Diagonal of D*S.
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		var v float64
		for k := 0; k < n; k++ {
			v += d.At(i, k) * s.At(k, i)
		}
		diag[i] = v
	}
	charges := make([]float64, len(mol.Atoms))
	for a := range mol.Atoms {
		charges[a] = float64(mol.Atoms[a].Z)
	}
	for si, sh := range bs.Shells {
		off := bs.Offsets[si]
		for k := 0; k < sh.NumFuncs(); k++ {
			charges[sh.Atom] -= diag[off+k]
		}
	}
	return charges, nil
}

// GrossPopulations returns the per-atom electron counts N_A =
// sum_{i in A} (D S)_{ii} (the complement of the Mulliken charges).
func GrossPopulations(bs *basis.Set, d, s *linalg.Matrix) ([]float64, error) {
	charges, err := Mulliken(bs, d, s)
	if err != nil {
		return nil, err
	}
	pops := make([]float64, len(charges))
	for a, q := range charges {
		pops[a] = float64(bs.Mol.Atoms[a].Z) - q
	}
	return pops, nil
}
