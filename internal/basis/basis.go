// Package basis implements contracted Gaussian basis sets grouped into
// shells, following the paper's terminology (Sec. II-A): a *shell* is a set
// of basis functions sharing an angular momentum and a center; an *atom* is
// the set of shells on one center. Shells are the minimal ERI batching
// unit; atoms are the batching unit of the NWChem-style baseline.
//
// The built-in "cc-pvdz" set reproduces the exact shell structure of
// Dunning's cc-pVDZ for H and C (H: 3 shells / 5 functions, C: 6 shells /
// 14 functions, spherical d), so molecule-level shell and function counts
// match the paper's Table II and Fig. 1 (e.g. C100H202 -> 1206 shells,
// 2410 functions). Exponents and contraction coefficients are close to the
// published values; see DESIGN.md for the substitution note.
package basis

import (
	"fmt"
	"math"

	"gtfock/internal/chem"
)

// Shell is one contracted Gaussian shell. Coefs hold the contraction
// coefficients with primitive normalization folded in, scaled so the
// contracted functions are unit-normalized (xy-convention for d shells;
// see the integrals package).
type Shell struct {
	L      int // angular momentum: 0=s, 1=p, 2=d, ...
	Atom   int // index of the parent atom in the molecule
	Center chem.Vec3
	Exps   []float64
	Coefs  []float64
}

// NumFuncs returns the number of (spherical) basis functions in the shell.
func (s *Shell) NumFuncs() int { return 2*s.L + 1 }

// NumCart returns the number of Cartesian components for the shell's L.
func (s *Shell) NumCart() int { return (s.L + 1) * (s.L + 2) / 2 }

// Set is a basis set instantiated on a molecule.
type Set struct {
	Name     string
	Mol      *chem.Molecule
	Shells   []Shell
	Offsets  []int   // Offsets[i] = index of first basis function of shell i
	NumFuncs int     // total basis functions
	AtomOf   []int   // AtomOf[i] = atom index of shell i (== Shells[i].Atom)
	ByAtom   [][]int // ByAtom[a] = shell indices on atom a
}

// NumShells returns the number of shells.
func (b *Set) NumShells() int { return len(b.Shells) }

// ShellFuncs returns the number of basis functions of shell i.
func (b *Set) ShellFuncs(i int) int { return b.Shells[i].NumFuncs() }

// AvgFuncsPerShell returns A, the average number of basis functions per
// shell (the quantity A of the paper's performance model, Sec. III-G).
func (b *Set) AvgFuncsPerShell() float64 {
	if len(b.Shells) == 0 {
		return 0
	}
	return float64(b.NumFuncs) / float64(len(b.Shells))
}

// elementShell is a shell template from a basis-set table.
type elementShell struct {
	l     int
	exps  []float64
	coefs []float64
}

// Tables of built-in basis sets, keyed by atomic number.
var tables = map[string]map[int][]elementShell{
	// cc-pVDZ-like data for H and C (see package comment).
	"cc-pvdz": {
		chem.ZHydrogen: {
			{l: 0,
				exps:  []float64{13.0100, 1.9620, 0.4446},
				coefs: []float64{0.019685, 0.137977, 0.478148}},
			{l: 0, exps: []float64{0.1220}, coefs: []float64{1}},
			{l: 1, exps: []float64{0.7270}, coefs: []float64{1}},
		},
		chem.ZCarbon: {
			{l: 0,
				exps: []float64{6665.0, 1000.0, 228.0, 64.71, 21.06,
					7.495, 2.797, 0.5215},
				coefs: []float64{0.000692, 0.005329, 0.027077, 0.101718,
					0.274740, 0.448564, 0.285074, 0.015204}},
			{l: 0,
				exps: []float64{6665.0, 1000.0, 228.0, 64.71, 21.06,
					7.495, 2.797, 0.5215},
				coefs: []float64{-0.000146, -0.001154, -0.005725, -0.023312,
					-0.063955, -0.149981, -0.127262, 0.544529}},
			{l: 0, exps: []float64{0.1596}, coefs: []float64{1}},
			{l: 1,
				exps:  []float64{9.439, 2.002, 0.5456},
				coefs: []float64{0.038109, 0.209480, 0.508557}},
			{l: 1, exps: []float64{0.1517}, coefs: []float64{1}},
			{l: 2, exps: []float64{0.5500}, coefs: []float64{1}},
		},
	},
	// cc-pVTZ-like data (exact cc-pVTZ shell structure for H and C:
	// H [3s2p1d] -> 6 shells / 14 funcs, C [4s3p2d1f] -> 10 shells /
	// 30 funcs; exponents/coefficients approximate, see DESIGN.md).
	"cc-pvtz": {
		chem.ZHydrogen: {
			{l: 0,
				exps:  []float64{33.870, 5.095, 1.159},
				coefs: []float64{0.006068, 0.045308, 0.202822}},
			{l: 0, exps: []float64{0.3258}, coefs: []float64{1}},
			{l: 0, exps: []float64{0.1027}, coefs: []float64{1}},
			{l: 1, exps: []float64{1.407}, coefs: []float64{1}},
			{l: 1, exps: []float64{0.388}, coefs: []float64{1}},
			{l: 2, exps: []float64{1.057}, coefs: []float64{1}},
		},
		chem.ZCarbon: {
			{l: 0,
				exps: []float64{8236.0, 1235.0, 280.8, 79.27, 25.59,
					8.997, 3.319, 0.3643},
				coefs: []float64{0.000531, 0.004108, 0.021087, 0.081853,
					0.234817, 0.434401, 0.346129, -0.008983}},
			{l: 0,
				exps: []float64{8236.0, 1235.0, 280.8, 79.27, 25.59,
					8.997, 3.319, 0.3643},
				coefs: []float64{-0.000113, -0.000878, -0.004540, -0.018133,
					-0.055760, -0.126895, -0.170352, 0.598684}},
			{l: 0, exps: []float64{0.9059}, coefs: []float64{1}},
			{l: 0, exps: []float64{0.1285}, coefs: []float64{1}},
			{l: 1,
				exps:  []float64{18.71, 4.133, 1.200},
				coefs: []float64{0.014031, 0.086866, 0.290216}},
			{l: 1, exps: []float64{0.3827}, coefs: []float64{1}},
			{l: 1, exps: []float64{0.1209}, coefs: []float64{1}},
			{l: 2, exps: []float64{1.097}, coefs: []float64{1}},
			{l: 2, exps: []float64{0.318}, coefs: []float64{1}},
			{l: 3, exps: []float64{0.761}, coefs: []float64{1}},
		},
	},
	// Pople 6-31G (split valence; H 2 shells / 2 funcs, C 5 shells /
	// 9 funcs).
	"6-31g": {
		chem.ZHydrogen: {
			{l: 0,
				exps:  []float64{18.7311370, 2.8253937, 0.6401217},
				coefs: []float64{0.03349460, 0.23472695, 0.81375733}},
			{l: 0, exps: []float64{0.1612778}, coefs: []float64{1}},
		},
		chem.ZCarbon: {
			{l: 0,
				exps: []float64{3047.5249, 457.36951, 103.94869,
					29.210155, 9.2866630, 3.1639270},
				coefs: []float64{0.0018347, 0.0140373, 0.0688426,
					0.2321844, 0.4679413, 0.3623120}},
			{l: 0,
				exps:  []float64{7.8682724, 1.8812885, 0.5442493},
				coefs: []float64{-0.1193324, -0.1608542, 1.1434564}},
			{l: 1,
				exps:  []float64{7.8682724, 1.8812885, 0.5442493},
				coefs: []float64{0.0689991, 0.3164240, 0.7443083}},
			{l: 0, exps: []float64{0.1687144}, coefs: []float64{1}},
			{l: 1, exps: []float64{0.1687144}, coefs: []float64{1}},
		},
	},
	// STO-3G, for fast correctness tests.
	"sto-3g": {
		chem.ZHydrogen: {
			{l: 0,
				exps:  []float64{3.42525091, 0.62391373, 0.16885540},
				coefs: []float64{0.15432897, 0.53532814, 0.44463454}},
		},
		chem.ZCarbon: {
			{l: 0,
				exps:  []float64{71.6168370, 13.0450960, 3.5305122},
				coefs: []float64{0.15432897, 0.53532814, 0.44463454}},
			{l: 0,
				exps:  []float64{2.9412494, 0.6834831, 0.2222899},
				coefs: []float64{-0.09996723, 0.39951283, 0.70011547}},
			{l: 1,
				exps:  []float64{2.9412494, 0.6834831, 0.2222899},
				coefs: []float64{0.15591627, 0.60768372, 0.39195739}},
		},
	},
}

// Names returns the available built-in basis set names.
func Names() []string { return []string{"sto-3g", "6-31g", "cc-pvdz", "cc-pvtz"} }

// Build instantiates the named basis set on a molecule.
func Build(mol *chem.Molecule, name string) (*Set, error) {
	table, ok := tables[name]
	if !ok {
		return nil, fmt.Errorf("basis: unknown basis set %q", name)
	}
	b := &Set{Name: name, Mol: mol, ByAtom: make([][]int, len(mol.Atoms))}
	for ai, atom := range mol.Atoms {
		shells, ok := table[atom.Z]
		if !ok {
			return nil, fmt.Errorf("basis: %s has no data for element %s",
				name, chem.Symbol(atom.Z))
		}
		for _, es := range shells {
			sh := Shell{
				L:      es.l,
				Atom:   ai,
				Center: atom.Pos,
				Exps:   append([]float64(nil), es.exps...),
				Coefs:  normalizeContraction(es.l, es.exps, es.coefs),
			}
			b.ByAtom[ai] = append(b.ByAtom[ai], len(b.Shells))
			b.AtomOf = append(b.AtomOf, ai)
			b.Shells = append(b.Shells, sh)
		}
	}
	b.rebuildOffsets()
	return b, nil
}

// rebuildOffsets recomputes Offsets and NumFuncs from Shells.
func (b *Set) rebuildOffsets() {
	b.Offsets = make([]int, len(b.Shells)+1)
	for i := range b.Shells {
		b.Offsets[i+1] = b.Offsets[i] + b.Shells[i].NumFuncs()
	}
	b.NumFuncs = b.Offsets[len(b.Shells)]
	b.Offsets = b.Offsets[:len(b.Shells)]
}

// Permute returns a new Set whose shell i is b.Shells[order[i]]. order must
// be a permutation of [0, NumShells). This implements the basis-function
// renumbering of the paper's Sec. III-D: functions within a shell stay
// consecutive, and consecutive shells get consecutive function blocks.
func (b *Set) Permute(order []int) *Set {
	if len(order) != len(b.Shells) {
		panic("basis: Permute length mismatch")
	}
	seen := make([]bool, len(order))
	nb := &Set{Name: b.Name, Mol: b.Mol, ByAtom: make([][]int, len(b.ByAtom))}
	for newIdx, oldIdx := range order {
		if oldIdx < 0 || oldIdx >= len(b.Shells) || seen[oldIdx] {
			panic("basis: Permute order is not a permutation")
		}
		seen[oldIdx] = true
		sh := b.Shells[oldIdx]
		nb.Shells = append(nb.Shells, sh)
		nb.AtomOf = append(nb.AtomOf, sh.Atom)
		nb.ByAtom[sh.Atom] = append(nb.ByAtom[sh.Atom], newIdx)
	}
	nb.rebuildOffsets()
	return nb
}

// FunctionPermutation returns the basis-function index map induced by
// Permute(order): fmap[oldFunc] = newFunc. Useful for comparing matrices
// computed in differently ordered bases.
func (b *Set) FunctionPermutation(order []int) []int {
	nb := b.Permute(order)
	fmap := make([]int, b.NumFuncs)
	for newIdx, oldIdx := range order {
		oldOff := b.Offsets[oldIdx]
		newOff := nb.Offsets[newIdx]
		for k := 0; k < b.ShellFuncs(oldIdx); k++ {
			fmap[oldOff+k] = newOff + k
		}
	}
	return fmap
}

// doubleFactorial returns n!! with (-1)!! == 0!! == 1.
func doubleFactorial(n int) float64 {
	r := 1.0
	for ; n > 1; n -= 2 {
		r *= float64(n)
	}
	return r
}

// primNorm returns the normalization constant of a primitive Gaussian of
// exponent a and angular momentum l, using the "all-ones" Cartesian
// reference component (x^l for p, xy for d): the convention under which the
// spherical transform in the integrals package yields unit-normalized
// spherical functions.
func primNorm(a float64, l int) float64 {
	var k float64
	switch l {
	case 0, 1:
		k = 1
	case 2:
		k = 1 // xy component: (2*1-1)!!^2 = 1
	default:
		// Reference component with maximally spread exponents.
		i := (l + 1) / 2
		j := l - i
		k = doubleFactorial(2*i-1) * doubleFactorial(2*j-1)
	}
	return math.Pow(2*a/math.Pi, 0.75) * math.Pow(4*a, float64(l)/2) / math.Sqrt(k)
}

// refSelfOverlap returns the self-overlap of the reference Cartesian
// component of the product of two primitives with exponents a, b at the
// same center (used for contracted normalization).
func refSelfOverlap(a, b float64, l int) float64 {
	p := a + b
	var k float64
	switch l {
	case 0, 1:
		k = doubleFactorial(2*l - 1)
	case 2:
		k = 1
	default:
		i := (l + 1) / 2
		j := l - i
		k = doubleFactorial(2*i-1) * doubleFactorial(2*j-1)
	}
	return math.Pow(math.Pi/p, 1.5) * k / math.Pow(2*p, float64(l))
}

// normalizeContraction folds primitive normalization into the contraction
// coefficients and scales the result to a unit-normalized contracted
// function.
func normalizeContraction(l int, exps, coefs []float64) []float64 {
	if len(exps) != len(coefs) {
		panic("basis: exps/coefs length mismatch")
	}
	out := make([]float64, len(coefs))
	for i := range coefs {
		out[i] = coefs[i] * primNorm(exps[i], l)
	}
	var s float64
	for i := range out {
		for j := range out {
			s += out[i] * out[j] * refSelfOverlap(exps[i], exps[j], l)
		}
	}
	inv := 1 / math.Sqrt(s)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// CountFuncs returns (shells, functions) the named basis would produce on
// the molecule without instantiating it.
func CountFuncs(mol *chem.Molecule, name string) (int, int, error) {
	table, ok := tables[name]
	if !ok {
		return 0, 0, fmt.Errorf("basis: unknown basis set %q", name)
	}
	shells, funcs := 0, 0
	for _, atom := range mol.Atoms {
		es, ok := table[atom.Z]
		if !ok {
			return 0, 0, fmt.Errorf("basis: %s has no data for element %s",
				name, chem.Symbol(atom.Z))
		}
		shells += len(es)
		for _, sh := range es {
			funcs += 2*sh.l + 1
		}
	}
	return shells, funcs, nil
}
