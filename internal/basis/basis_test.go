package basis

import (
	"math"
	"math/rand"
	"testing"

	"gtfock/internal/chem"
)

func TestDoubleFactorial(t *testing.T) {
	cases := map[int]float64{-1: 1, 0: 1, 1: 1, 2: 2, 3: 3, 4: 8, 5: 15, 7: 105}
	for n, want := range cases {
		if got := doubleFactorial(n); got != want {
			t.Fatalf("doubleFactorial(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestShellCounts(t *testing.T) {
	s := Shell{L: 0}
	if s.NumFuncs() != 1 || s.NumCart() != 1 {
		t.Fatal("s shell counts")
	}
	p := Shell{L: 1}
	if p.NumFuncs() != 3 || p.NumCart() != 3 {
		t.Fatal("p shell counts")
	}
	d := Shell{L: 2}
	if d.NumFuncs() != 5 || d.NumCart() != 6 {
		t.Fatal("d shell counts")
	}
}

// Table II structure check: shells and functions per molecule must match
// the cc-pVDZ counts given in the paper (C100H202: 1206 shells, 2410
// functions is stated explicitly in Sec. III-D).
func TestPaperShellFunctionCounts(t *testing.T) {
	cases := []struct {
		formula          string
		shells, funcs    int
		atoms, electrons int
	}{
		{"C96H24", 96*6 + 24*3, 96*14 + 24*5, 120, 600},
		{"C150H30", 150*6 + 30*3, 150*14 + 30*5, 180, 930},
		{"C100H202", 1206, 2410, 302, 802},
		{"C144H290", 144*6 + 290*3, 144*14 + 290*5, 434, 1154},
		{"C24H12", 24*6 + 12*3, 24*14 + 12*5, 36, 156},
		{"C10H22", 10*6 + 22*3, 10*14 + 22*5, 32, 82},
	}
	for _, c := range cases {
		mol, err := chem.PaperMolecule(c.formula)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(mol, "cc-pvdz")
		if err != nil {
			t.Fatal(err)
		}
		if b.NumShells() != c.shells {
			t.Errorf("%s: shells = %d, want %d", c.formula, b.NumShells(), c.shells)
		}
		if b.NumFuncs != c.funcs {
			t.Errorf("%s: funcs = %d, want %d", c.formula, b.NumFuncs, c.funcs)
		}
		ns, nf, err := CountFuncs(mol, "cc-pvdz")
		if err != nil || ns != c.shells || nf != c.funcs {
			t.Errorf("%s: CountFuncs = %d,%d,%v", c.formula, ns, nf, err)
		}
	}
}

func TestOffsetsConsistent(t *testing.T) {
	mol := chem.Methane()
	b, err := Build(mol, "cc-pvdz")
	if err != nil {
		t.Fatal(err)
	}
	// CH4: C = 6 shells, 4 H x 3 shells = 12; total 18 shells, 14+20=34 funcs.
	if b.NumShells() != 18 || b.NumFuncs != 34 {
		t.Fatalf("CH4 cc-pvdz: %d shells, %d funcs", b.NumShells(), b.NumFuncs)
	}
	off := 0
	for i := range b.Shells {
		if b.Offsets[i] != off {
			t.Fatalf("offset[%d] = %d, want %d", i, b.Offsets[i], off)
		}
		off += b.ShellFuncs(i)
	}
	if off != b.NumFuncs {
		t.Fatal("offsets do not sum to NumFuncs")
	}
}

func TestByAtomAndAtomOf(t *testing.T) {
	mol := chem.Hydrogen2(0)
	b, err := Build(mol, "cc-pvdz")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ByAtom) != 2 || len(b.ByAtom[0]) != 3 || len(b.ByAtom[1]) != 3 {
		t.Fatalf("ByAtom = %v", b.ByAtom)
	}
	for a, shells := range b.ByAtom {
		for _, s := range shells {
			if b.AtomOf[s] != a || b.Shells[s].Atom != a {
				t.Fatal("AtomOf inconsistent")
			}
			if b.Shells[s].Center != mol.Atoms[a].Pos {
				t.Fatal("shell center mismatch")
			}
		}
	}
}

func TestUnknownBasisAndElement(t *testing.T) {
	mol := chem.Methane()
	if _, err := Build(mol, "nope"); err == nil {
		t.Fatal("expected error for unknown basis")
	}
	bad := &chem.Molecule{Atoms: []chem.Atom{{Z: 8}}}
	if _, err := Build(bad, "cc-pvdz"); err == nil {
		t.Fatal("expected error for missing element")
	}
}

func TestPermute(t *testing.T) {
	mol := chem.Methane()
	b, _ := Build(mol, "cc-pvdz")
	n := b.NumShells()
	rng := rand.New(rand.NewSource(42))
	order := rng.Perm(n)
	pb := b.Permute(order)
	if pb.NumFuncs != b.NumFuncs || pb.NumShells() != n {
		t.Fatal("Permute changed totals")
	}
	for newIdx, oldIdx := range order {
		if pb.Shells[newIdx].L != b.Shells[oldIdx].L ||
			pb.Shells[newIdx].Atom != b.Shells[oldIdx].Atom {
			t.Fatal("Permute mangled shells")
		}
	}
	// ByAtom must still index correctly.
	for a, shells := range pb.ByAtom {
		for _, s := range shells {
			if pb.Shells[s].Atom != a {
				t.Fatal("Permute ByAtom broken")
			}
		}
	}
	// Offsets rebuilt.
	off := 0
	for i := range pb.Shells {
		if pb.Offsets[i] != off {
			t.Fatal("Permute offsets broken")
		}
		off += pb.ShellFuncs(i)
	}
}

func TestPermuteRejectsBadOrder(t *testing.T) {
	mol := chem.Hydrogen2(0)
	b, _ := Build(mol, "sto-3g")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-permutation")
		}
	}()
	b.Permute([]int{0, 0})
}

// Contracted normalization: the self-overlap computed from the normalized
// coefficients must be exactly 1 for every shell.
func TestContractionNormalized(t *testing.T) {
	mol := chem.Methane()
	for _, name := range Names() {
		b, err := Build(mol, name)
		if err != nil {
			t.Fatal(err)
		}
		for si, sh := range b.Shells {
			var s float64
			for i := range sh.Coefs {
				for j := range sh.Coefs {
					s += sh.Coefs[i] * sh.Coefs[j] *
						refSelfOverlap(sh.Exps[i], sh.Exps[j], sh.L)
				}
			}
			if math.Abs(s-1) > 1e-12 {
				t.Fatalf("%s shell %d (L=%d): self-overlap %v", name, si, sh.L, s)
			}
		}
	}
}

func TestPrimNormSingle(t *testing.T) {
	// For a single primitive s function, N^2 * (pi/2a)^{3/2} == 1.
	for _, a := range []float64{0.1, 1.0, 13.5} {
		n := primNorm(a, 0)
		s := n * n * math.Pow(math.Pi/(2*a), 1.5)
		if math.Abs(s-1) > 1e-13 {
			t.Fatalf("primNorm(a=%v, l=0): self overlap %v", a, s)
		}
	}
}

func TestBasisFamilySizes(t *testing.T) {
	mol := chem.Methane()       // 1 C + 4 H
	cases := map[string][2]int{ // shells, funcs
		"sto-3g":  {3 + 4*1, 5 + 4*1},
		"6-31g":   {5 + 4*2, 9 + 4*2},
		"cc-pvdz": {6 + 4*3, 14 + 4*5},
		"cc-pvtz": {10 + 4*6, 30 + 4*14},
	}
	for name, want := range cases {
		b, err := Build(mol, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.NumShells() != want[0] || b.NumFuncs != want[1] {
			t.Fatalf("%s: %d shells / %d funcs, want %d / %d",
				name, b.NumShells(), b.NumFuncs, want[0], want[1])
		}
	}
}

// Larger basis sets must have strictly more functions (basis-set ladder).
func TestBasisLadderMonotone(t *testing.T) {
	mol := chem.Benzene()
	prev := 0
	for _, name := range Names() {
		b, err := Build(mol, name)
		if err != nil {
			t.Fatal(err)
		}
		if b.NumFuncs <= prev {
			t.Fatalf("%s has %d funcs, not more than previous %d",
				name, b.NumFuncs, prev)
		}
		prev = b.NumFuncs
	}
}

func TestAvgFuncsPerShell(t *testing.T) {
	mol, _ := chem.PaperMolecule("C100H202")
	b, _ := Build(mol, "cc-pvdz")
	got := b.AvgFuncsPerShell()
	want := 2410.0 / 1206.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("A = %v, want %v", got, want)
	}
}
