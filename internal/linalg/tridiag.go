package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigSymTridiag computes the full eigendecomposition of a real symmetric
// matrix by Householder reduction to tridiagonal form followed by the
// implicit-shift QL iteration — the classical dense O(n^3) path (LAPACK
// dsyev's ancestor). It is much faster than cyclic Jacobi for n beyond a
// few dozen and is the default behind EigSym; Jacobi remains available as
// an independent oracle (EigSymJacobi).
func EigSymTridiag(a *Matrix) EigResult {
	if a.Rows != a.Cols {
		panic("linalg: EigSymTridiag of non-square matrix")
	}
	n := a.Rows
	if n == 0 {
		return EigResult{Values: nil, Vectors: NewMatrix(0, 0)}
	}
	z := a.Clone() // becomes the accumulated orthogonal transform
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e)
	if err := tqli(d, e, z); err != nil {
		// Extremely pathological input: fall back to the unconditionally
		// convergent Jacobi method.
		return EigSymJacobi(a)
	}

	// Sort eigenpairs ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] < d[idx[j]] })
	vals := make([]float64, n)
	vecs := NewMatrix(n, n)
	for newj, oldj := range idx {
		vals[newj] = d[oldj]
		for i := 0; i < n; i++ {
			vecs.Set(i, newj, z.At(i, oldj))
		}
	}
	return EigResult{Values: vals, Vectors: vecs}
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form via
// Householder reflections: on return d holds the diagonal, e the
// subdiagonal (e[0] = 0), and z the orthogonal matrix Q with
// A = Q T Q^T.
func tred2(z *Matrix, d, e []float64) {
	n := z.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					z.Set(i, k, z.At(i, k)/scale)
					h += z.At(i, k) * z.At(i, k)
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Set(j, k, z.At(j, k)-f*e[k]-g*z.At(i, k))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	// Accumulate the transformation.
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0)
			z.Set(i, j, 0)
		}
	}
}

// tqli diagonalizes a symmetric tridiagonal matrix (d diagonal, e
// subdiagonal with e[0] unused) by the QL algorithm with implicit shifts,
// accumulating rotations into z's columns.
func tqli(d, e []float64, z *Matrix) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter >= 50 {
				return fmt.Errorf("linalg: tqli failed to converge at row %d", l)
			}
			// Find a small off-diagonal to split at.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			cancelled := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Cancellation: undo and retry the sweep.
					d[i+1] -= p
					e[m] = 0
					cancelled = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into the eigenvector columns.
				for k := 0; k < z.Rows; k++ {
					zk := z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*zk)
					z.Set(k, i, c*z.At(k, i)-s*zk)
				}
			}
			if cancelled {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}
