// Package linalg provides the dense linear algebra kernels used by the
// Fock-build and SCF code: a row-major dense matrix type, a cyclic Jacobi
// symmetric eigensolver, blocked (optionally parallel) matrix multiply,
// and the small helpers (trace, norms, Gershgorin bounds, S^{-1/2})
// required by Hartree-Fock and density purification.
//
// The package is deliberately self-contained (stdlib only); it plays the
// role MKL played in the paper's experimental setup.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-initialized Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies the contents of src (same shape) into m.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Scale multiplies every element of m by a, in place, and returns m.
func (m *Matrix) Scale(a float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// AXPY performs m += a*x elementwise (x must have the same shape).
func (m *Matrix) AXPY(a float64, x *Matrix) *Matrix {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic("linalg: AXPY shape mismatch")
	}
	for i, v := range x.Data {
		m.Data[i] += a * v
	}
	return m
}

// Trace returns the sum of diagonal elements (square matrices only).
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// MaxAbs returns max_ij |m_ij| (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: MaxAbsDiff shape mismatch")
	}
	var mx float64
	for i, v := range a.Data {
		if d := math.Abs(v - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(sum m_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SymmetryError returns max_ij |m_ij - m_ji| for a square matrix.
func (m *Matrix) SymmetryError() float64 {
	if m.Rows != m.Cols {
		panic("linalg: SymmetryError of non-square matrix")
	}
	var mx float64
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if d := math.Abs(m.At(i, j) - m.At(j, i)); d > mx {
				mx = d
			}
		}
	}
	return mx
}

// Symmetrize replaces m with (m + m^T)/2 in place.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// Gershgorin returns lower and upper bounds on the eigenvalue spectrum of a
// square matrix using Gershgorin discs. Purification uses these to map the
// spectrum into [0, 1] without an eigensolve.
func (m *Matrix) Gershgorin() (lo, hi float64) {
	if m.Rows != m.Cols {
		panic("linalg: Gershgorin of non-square matrix")
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < m.Rows; i++ {
		var r float64
		for j := 0; j < m.Cols; j++ {
			if j != i {
				r += math.Abs(m.At(i, j))
			}
		}
		d := m.At(i, i)
		if d-r < lo {
			lo = d - r
		}
		if d+r > hi {
			hi = d + r
		}
	}
	if m.Rows == 0 {
		return 0, 0
	}
	return lo, hi
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix %dx%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < 12; i++ {
		for j := 0; j < m.Cols && j < 12; j++ {
			fmt.Fprintf(&b, "% 12.6f ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Equal reports whether a and b have the same shape and elements within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}
