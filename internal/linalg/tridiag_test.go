package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The tridiagonal solver must agree with the independent Jacobi method on
// eigenvalues, and both must reconstruct the input.
func TestTridiagMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5, 9, 17, 40, 100} {
		a := randSym(rng, n)
		tri := EigSymTridiag(a)
		jac := EigSymJacobi(a)
		scale := 1 + a.MaxAbs()
		for i := 0; i < n; i++ {
			if math.Abs(tri.Values[i]-jac.Values[i]) > 1e-10*scale {
				t.Fatalf("n=%d: eigenvalue %d: tridiag %.14g vs jacobi %.14g",
					n, i, tri.Values[i], jac.Values[i])
			}
		}
		// Reconstruction and orthonormality.
		lam := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, tri.Values[i])
		}
		recon := MatMul(MatMul(tri.Vectors, lam), tri.Vectors.T())
		if d := MaxAbsDiff(a, recon); d > 1e-9*scale {
			t.Fatalf("n=%d: reconstruction error %g", n, d)
		}
		vtv := MatMul(tri.Vectors.T(), tri.Vectors)
		if d := MaxAbsDiff(vtv, Identity(n)); d > 1e-10 {
			t.Fatalf("n=%d: vectors not orthonormal (%g)", n, d)
		}
	}
}

func TestTridiagDegenerateEigenvalues(t *testing.T) {
	// Matrix with repeated eigenvalues: I + rank-1.
	n := 12
	a := Identity(n)
	u := make([]float64, n)
	for i := range u {
		u[i] = 1 / math.Sqrt(float64(n))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Add(i, j, 3*u[i]*u[j])
		}
	}
	eig := EigSymTridiag(a)
	// n-1 eigenvalues at 1, one at 4.
	for i := 0; i < n-1; i++ {
		if math.Abs(eig.Values[i]-1) > 1e-10 {
			t.Fatalf("eigenvalue %d = %v, want 1", i, eig.Values[i])
		}
	}
	if math.Abs(eig.Values[n-1]-4) > 1e-10 {
		t.Fatalf("top eigenvalue %v, want 4", eig.Values[n-1])
	}
}

func TestTridiagAlreadyDiagonal(t *testing.T) {
	n := 10
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, float64(n-i))
	}
	eig := EigSymTridiag(a)
	for i := 0; i < n; i++ {
		if math.Abs(eig.Values[i]-float64(i+1)) > 1e-12 {
			t.Fatalf("diag eigenvalues wrong: %v", eig.Values)
		}
	}
}

func TestTridiagZeroAndEmpty(t *testing.T) {
	eig := EigSymTridiag(NewMatrix(0, 0))
	if len(eig.Values) != 0 {
		t.Fatal("empty matrix")
	}
	z := NewMatrix(5, 5)
	eig = EigSymTridiag(z)
	for _, v := range eig.Values {
		if v != 0 {
			t.Fatal("zero matrix eigenvalues")
		}
	}
}

// Graded matrices (huge dynamic range) are the classic tqli stress test.
func TestTridiagGradedMatrix(t *testing.T) {
	n := 20
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, math.Pow(10, float64(i-10)))
		if i > 0 {
			v := math.Pow(10, float64(i-11)) // coupling on the small scale
			a.Set(i, i-1, v)
			a.Set(i-1, i, v)
		}
	}
	tri := EigSymTridiag(a)
	jac := EigSymJacobi(a)
	for i := 0; i < n; i++ {
		denom := math.Max(math.Abs(jac.Values[i]), 1e-12)
		if math.Abs(tri.Values[i]-jac.Values[i])/math.Max(denom, 1e-6) > 1e-6 {
			t.Fatalf("graded eigenvalue %d: %g vs %g", i, tri.Values[i], jac.Values[i])
		}
	}
}

func BenchmarkEigSymTridiag200(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	a := randSym(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigSymTridiag(a)
	}
}

func BenchmarkEigSymJacobi200(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := randSym(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigSymJacobi(a)
	}
}
