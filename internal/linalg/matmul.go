package linalg

import (
	"runtime"
	"sync"
)

// MatMul returns a*b using a cache-blocked serial kernel.
func MatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	GEMM(1, a, b, 0, c)
	return c
}

// MatMulParallel returns a*b computed with up to nworkers goroutines
// partitioning the rows of the result. nworkers <= 0 uses GOMAXPROCS.
func MatMulParallel(a, b *Matrix, nworkers int) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	if nworkers > a.Rows {
		nworkers = a.Rows
	}
	if nworkers <= 1 {
		GEMM(1, a, b, 0, c)
		return c
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + nworkers - 1) / nworkers
	for w := 0; w < nworkers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(1, a, b, 0, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c
}

// GEMM computes c = alpha*a*b + beta*c. Shapes must conform; c must not
// alias a or b.
func GEMM(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("linalg: GEMM shape mismatch")
	}
	gemmRows(alpha, a, b, beta, c, 0, a.Rows)
}

// gemmRows computes rows [lo,hi) of c = alpha*a*b + beta*c with an
// ikj loop order (streams rows of b, vector-friendly inner loop).
func gemmRows(alpha float64, a, b *Matrix, beta float64, c *Matrix, lo, hi int) {
	n, k := c.Cols, a.Cols
	for i := lo; i < hi; i++ {
		ci := c.Data[i*n : (i+1)*n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		ai := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := alpha * ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatVec returns a*x for a vector x (len a.Cols).
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("linalg: MatVec shape mismatch")
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// TraceMul returns trace(a*b) without forming the product.
func TraceMul(a, b *Matrix) float64 {
	if a.Cols != b.Rows || a.Rows != b.Cols {
		panic("linalg: TraceMul shape mismatch")
	}
	var t float64
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for p, av := range arow {
			t += av * b.Data[p*b.Cols+i]
		}
	}
	return t
}
