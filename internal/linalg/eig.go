package linalg

import (
	"math"
	"sort"
)

// EigResult holds the eigendecomposition A = V diag(Values) V^T of a real
// symmetric matrix. Eigenvalues are sorted in ascending order; column j of
// Vectors is the eigenvector for Values[j].
type EigResult struct {
	Values  []float64
	Vectors *Matrix
}

// EigSym computes the full eigendecomposition of the real symmetric
// matrix a (A = V diag V^T); the input is not modified. It plays the role
// of LAPACK's dsyev in the paper's software stack: Householder
// tridiagonalization + implicit QL for anything beyond trivial sizes,
// with the unconditionally convergent Jacobi method as oracle/fallback.
func EigSym(a *Matrix) EigResult {
	if a.Rows <= 8 {
		return EigSymJacobi(a)
	}
	return EigSymTridiag(a)
}

// EigSymJacobi computes the eigendecomposition with the cyclic Jacobi
// method: slower (O(n^3) per sweep) but unconditionally stable, used as
// an independent cross-check of EigSymTridiag and for tiny matrices.
func EigSymJacobi(a *Matrix) EigResult {
	if a.Rows != a.Cols {
		panic("linalg: EigSym of non-square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)
	if n <= 1 {
		vals := make([]float64, n)
		if n == 1 {
			vals[0] = w.At(0, 0)
		}
		return EigResult{Values: vals, Vectors: v}
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, v, p, q)
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newj, oldj := range idx {
		sortedVals[newj] = vals[oldj]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newj, v.At(i, oldj))
		}
	}
	return EigResult{Values: sortedVals, Vectors: sortedVecs}
}

// offDiagNorm returns sqrt(sum of squares of off-diagonal elements).
func offDiagNorm(a *Matrix) float64 {
	var s float64
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := a.At(i, j)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}

// jacobiRotate applies one Jacobi rotation zeroing w[p][q], accumulating
// the rotation into v.
func jacobiRotate(w, v *Matrix, p, q int) {
	apq := w.At(p, q)
	if apq == 0 {
		return
	}
	app, aqq := w.At(p, p), w.At(q, q)
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	n := w.Rows

	// Update rows/columns p and q of w (symmetric update).
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip, aiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*aip-s*aiq)
		w.Set(p, i, c*aip-s*aiq)
		w.Set(i, q, s*aip+c*aiq)
		w.Set(q, i, s*aip+c*aiq)
	}
	w.Set(p, p, app-t*apq)
	w.Set(q, q, aqq+t*apq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)

	// Accumulate rotation into eigenvector matrix.
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// InvSqrtSym returns s^{-1/2} for a symmetric positive definite matrix s
// (the basis orthogonalization matrix X of Algorithm 1, line 4). Eigenvalues
// below dropTol are treated as linear dependencies and their directions are
// projected out (canonical orthogonalization); pass 0 for the default 1e-10.
func InvSqrtSym(s *Matrix, dropTol float64) *Matrix {
	if dropTol <= 0 {
		dropTol = 1e-10
	}
	eig := EigSym(s)
	n := s.Rows
	// X = U diag(1/sqrt(lambda)) U^T
	scaled := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		lam := eig.Values[j]
		var f float64
		if lam > dropTol {
			f = 1 / math.Sqrt(lam)
		}
		for i := 0; i < n; i++ {
			scaled.Set(i, j, eig.Vectors.At(i, j)*f)
		}
	}
	return MatMul(scaled, eig.Vectors.T())
}

// PowSym returns s^p for symmetric s via eigendecomposition (used in tests).
func PowSym(s *Matrix, p float64) *Matrix {
	eig := EigSym(s)
	n := s.Rows
	scaled := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		f := math.Pow(eig.Values[j], p)
		for i := 0; i < n; i++ {
			scaled.Set(i, j, eig.Vectors.At(i, j)*f)
		}
	}
	return MatMul(scaled, eig.Vectors.T())
}
