package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randSym(rng *rand.Rand, n int) *Matrix {
	m := randMatrix(rng, n, n)
	m.Symmetrize()
	return m
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d][%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 1, -7)
	if m.At(0, 1) != -7 {
		t.Fatalf("Set/At mismatch")
	}
	m.Add(0, 1, 2)
	if m.At(0, 1) != -5 {
		t.Fatalf("Add gave %v, want -5", m.At(0, 1))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 3, 5)
	tt := m.T().T()
	if MaxAbsDiff(m, tt) != 0 {
		t.Fatal("double transpose is not identity")
	}
	tr := m.T()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestTraceAndNorms(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {3, 4}})
	if m.Trace() != 5 {
		t.Fatalf("Trace = %v, want 5", m.Trace())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v, want 4", m.MaxAbs())
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if math.Abs(m.FrobeniusNorm()-want) > 1e-15 {
		t.Fatalf("FrobeniusNorm = %v, want %v", m.FrobeniusNorm(), want)
	}
}

func TestSymmetrize(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {4, 3}})
	if m.SymmetryError() != 2 {
		t.Fatalf("SymmetryError = %v, want 2", m.SymmetryError())
	}
	m.Symmetrize()
	if m.SymmetryError() != 0 {
		t.Fatal("Symmetrize did not symmetrize")
	}
	if m.At(0, 1) != 3 {
		t.Fatalf("symmetrized off-diagonal = %v, want 3", m.At(0, 1))
	}
}

func TestGershgorinBoundsEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a := randSym(rng, n)
		lo, hi := a.Gershgorin()
		eig := EigSym(a)
		for _, lam := range eig.Values {
			if lam < lo-1e-10 || lam > hi+1e-10 {
				t.Fatalf("eigenvalue %v outside Gershgorin [%v, %v]", lam, lo, hi)
			}
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) > 1e-14 {
		t.Fatalf("MatMul = %v, want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 7, 7)
	if MaxAbsDiff(MatMul(a, Identity(7)), a) > 1e-14 {
		t.Fatal("A*I != A")
	}
	if MaxAbsDiff(MatMul(Identity(7), a), a) > 1e-14 {
		t.Fatal("I*A != A")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 3, 17, 64} {
		a := randMatrix(rng, n, n+2)
		b := randMatrix(rng, n+2, n+1)
		serial := MatMul(a, b)
		for _, w := range []int{1, 2, 4, 9} {
			par := MatMulParallel(a, b, w)
			if MaxAbsDiff(serial, par) > 1e-12 {
				t.Fatalf("parallel (w=%d) differs from serial for n=%d", w, n)
			}
		}
	}
}

func TestGEMMAccumulate(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}})
	b := FromRows([][]float64{{2, 3}, {4, 5}})
	c := FromRows([][]float64{{1, 1}, {1, 1}})
	GEMM(2, a, b, 3, c) // c = 2*b + 3*ones
	want := FromRows([][]float64{{7, 9}, {11, 13}})
	if MaxAbsDiff(c, want) > 1e-14 {
		t.Fatalf("GEMM accumulate wrong: %v", c)
	}
}

func TestMatVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := MatVec(a, []float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v", y)
	}
}

func TestTraceMulMatchesProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 6, 4)
	b := randMatrix(rng, 4, 6)
	got := TraceMul(a, b)
	want := MatMul(a, b).Trace()
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TraceMul = %v, want %v", got, want)
	}
}

// Property: (AB)^T == B^T A^T.
func TestQuickMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		lhs := MatMul(a, b).T()
		rhs := MatMul(b.T(), a.T())
		return MaxAbsDiff(lhs, rhs) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul is associative.
func TestQuickMatMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, l, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, l)
		c := randMatrix(r, l, n)
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		return MaxAbsDiff(lhs, rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEigSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 25} {
		a := randSym(rng, n)
		eig := EigSym(a)
		// Check A = V diag V^T.
		lam := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, eig.Values[i])
		}
		recon := MatMul(MatMul(eig.Vectors, lam), eig.Vectors.T())
		if MaxAbsDiff(a, recon) > 1e-10*(1+a.MaxAbs()) {
			t.Fatalf("n=%d: eigendecomposition does not reconstruct A (err=%g)", n, MaxAbsDiff(a, recon))
		}
		// Check orthonormality of V.
		vtv := MatMul(eig.Vectors.T(), eig.Vectors)
		if MaxAbsDiff(vtv, Identity(n)) > 1e-11 {
			t.Fatalf("n=%d: eigenvectors not orthonormal", n)
		}
		// Check sorted ascending.
		for i := 1; i < n; i++ {
			if eig.Values[i] < eig.Values[i-1] {
				t.Fatalf("n=%d: eigenvalues not sorted", n)
			}
		}
	}
}

func TestEigSymKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	eig := EigSym(a)
	if math.Abs(eig.Values[0]-1) > 1e-12 || math.Abs(eig.Values[1]-3) > 1e-12 {
		t.Fatalf("eigenvalues = %v, want [1 3]", eig.Values)
	}
}

func TestEigSymDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -1)
	a.Set(2, 2, 2)
	eig := EigSym(a)
	want := []float64{-1, 2, 3}
	for i, w := range want {
		if math.Abs(eig.Values[i]-w) > 1e-13 {
			t.Fatalf("diag eig = %v, want %v", eig.Values, want)
		}
	}
}

func TestInvSqrtSym(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 12
	// Build an SPD matrix: A = B B^T + I.
	b := randMatrix(rng, n, n)
	a := MatMul(b, b.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	x := InvSqrtSym(a, 0)
	// X A X should be I.
	xax := MatMul(MatMul(x, a), x)
	if MaxAbsDiff(xax, Identity(n)) > 1e-9 {
		t.Fatalf("X*A*X != I (err %g)", MaxAbsDiff(xax, Identity(n)))
	}
}

func TestPowSym(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	half := PowSym(a, 0.5)
	want := FromRows([][]float64{{2, 0}, {0, 3}})
	if MaxAbsDiff(half, want) > 1e-12 {
		t.Fatalf("PowSym(diag(4,9), 0.5) = %v", half)
	}
}

func TestAXPYScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	x := FromRows([][]float64{{10, 20}})
	a.AXPY(0.5, x)
	if a.At(0, 0) != 6 || a.At(0, 1) != 12 {
		t.Fatalf("AXPY result %v", a)
	}
	a.Scale(2)
	if a.At(0, 0) != 12 {
		t.Fatalf("Scale result %v", a)
	}
}

func TestZeroAndCopyFrom(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrix(2, 2)
	b.CopyFrom(a)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("CopyFrom mismatch")
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero did not zero")
	}
	if b.MaxAbs() == 0 {
		t.Fatal("CopyFrom aliases source")
	}
}

func TestEqual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2.000001}})
	if !Equal(a, b, 1e-5) {
		t.Fatal("Equal should accept within tol")
	}
	if Equal(a, b, 1e-8) {
		t.Fatal("Equal should reject outside tol")
	}
	if Equal(a, NewMatrix(2, 1), 1) {
		t.Fatal("Equal should reject shape mismatch")
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randMatrix(rng, 256, 256)
	y := randMatrix(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulParallel256(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randMatrix(rng, 256, 256)
	y := randMatrix(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulParallel(x, y, 0)
	}
}

func BenchmarkEigSym64(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := randSym(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigSym(a)
	}
}
