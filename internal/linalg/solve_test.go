package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveLinearKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 3, 8, 20} {
		a := randMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)) // diagonally dominant: well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax := MatVec(a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-10 {
				t.Fatalf("n=%d: residual %g at %d", n, ax[i]-b[i], i)
			}
		}
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLinearShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}
