package linalg

import (
	"fmt"
	"math"
)

// SolveLinear solves the square system a*x = b by Gaussian elimination
// with partial pivoting. a and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLinear shape mismatch (%dx%d, b %d)",
			a.Rows, a.Cols, len(b))
	}
	// Working copies.
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best = v
				piv = r
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("linalg: singular system at column %d", col)
		}
		if piv != col {
			for c := 0; c < n; c++ {
				m.Data[col*n+c], m.Data[piv*n+c] = m.Data[piv*n+c], m.Data[col*n+c]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		// Eliminate below.
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Data[r*n+c] -= f * m.Data[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	return x, nil
}
