package correlate

import (
	"math"
	"math/rand"
	"testing"

	"gtfock/internal/basis"
	"gtfock/internal/chem"
	"gtfock/internal/integrals"
	"gtfock/internal/linalg"
	"gtfock/internal/scf"
)

func runSCF(t *testing.T, mol *chem.Molecule, bname string) *scf.Result {
	t.Helper()
	res, err := scf.RunHF(mol, scf.Options{BasisName: bname})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SCF not converged")
	}
	return res
}

func TestTransformMOIdentity(t *testing.T) {
	mol := chem.Hydrogen2(0)
	bs, _ := basis.Build(mol, "sto-3g")
	ao := integrals.AOTensor(bs)
	mo := TransformMO(ao, linalg.Identity(bs.NumFuncs))
	for i := range ao {
		if math.Abs(ao[i]-mo[i]) > 1e-12 {
			t.Fatalf("identity transform changed element %d", i)
		}
	}
}

// TransformMO must agree with a brute-force quadruple contraction.
func TestTransformMOBruteForce(t *testing.T) {
	mol := chem.Hydrogen2(0.9)
	bs, _ := basis.Build(mol, "sto-3g")
	n := bs.NumFuncs
	ao := integrals.AOTensor(bs)
	rng := rand.New(rand.NewSource(3))
	c := linalg.NewMatrix(n, n)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	mo := TransformMO(ao, c)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					var want float64
					for m := 0; m < n; m++ {
						for nn := 0; nn < n; nn++ {
							for l := 0; l < n; l++ {
								for ss := 0; ss < n; ss++ {
									want += c.At(m, p) * c.At(nn, q) * c.At(l, r) * c.At(ss, s) *
										ao[((m*n+nn)*n+l)*n+ss]
								}
							}
						}
					}
					got := mo[((p*n+q)*n+r)*n+s]
					if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
						t.Fatalf("(%d%d|%d%d): %g vs %g", p, q, r, s, got, want)
					}
				}
			}
		}
	}
}

// MO integrals keep the 8-fold permutational symmetry under an orthogonal
// (real) transformation.
func TestMOIntegralSymmetry(t *testing.T) {
	res := runSCF(t, chem.Hydrogen2(0.8), "sto-3g")
	n := res.Basis.NumFuncs
	mo := TransformMO(integrals.AOTensor(res.Basis), res.C)
	at := func(p, q, r, s int) float64 { return mo[((p*n+q)*n+r)*n+s] }
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					v := at(p, q, r, s)
					for _, w := range []float64{
						at(q, p, r, s), at(p, q, s, r), at(r, s, p, q),
					} {
						if math.Abs(v-w) > 1e-10*(1+math.Abs(v)) {
							t.Fatal("MO integral symmetry broken")
						}
					}
				}
			}
		}
	}
}

// Textbook check: H2/STO-3G at R = 1.4 a0 has E(FCI) ~ -1.1373 (Szabo &
// Ostlund: correlation energy -0.02056 on top of -1.1167).
func TestFCI2eH2STO3G(t *testing.T) {
	mol := chem.Hydrogen2(1.4 / chem.BohrPerAngstrom)
	bs, _ := basis.Build(mol, "sto-3g")
	efci, err := FCI2e(bs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(efci-(-1.1373)) > 2e-3 {
		t.Fatalf("E(FCI) = %.6f, want ~-1.1373", efci)
	}
}

func TestFCI2eRejectsNon2e(t *testing.T) {
	bs, _ := basis.Build(chem.Methane(), "sto-3g")
	if _, err := FCI2e(bs); err == nil {
		t.Fatal("expected error for 10-electron system")
	}
}

// MP2 on H2: negative correlation, bounded below by FCI, zero same-spin
// component (only one occupied spatial orbital).
func TestMP2H2AgainstFCI(t *testing.T) {
	mol := chem.Hydrogen2(1.4 / chem.BohrPerAngstrom)
	res := runSCF(t, mol, "sto-3g")
	mp2, err := MP2(res)
	if err != nil {
		t.Fatal(err)
	}
	if mp2.ECorr >= 0 {
		t.Fatalf("MP2 correlation %g not negative", mp2.ECorr)
	}
	if math.Abs(mp2.SameSpin) > 1e-12 {
		t.Fatalf("same-spin MP2 %g must vanish for 2 electrons", mp2.SameSpin)
	}
	if math.Abs(mp2.ECorr-mp2.OppositeSpin) > 1e-12 {
		t.Fatal("ECorr != SS + OS")
	}
	bs := res.Basis
	efci, err := FCI2e(bs)
	if err != nil {
		t.Fatal(err)
	}
	// Variational bound: E_HF + E2 can overshoot in tiny bases, but FCI is
	// exact: E_FCI < E_HF, and MP2 must recover a sizable fraction.
	if efci >= res.Energy {
		t.Fatalf("FCI %.6f not below HF %.6f", efci, res.Energy)
	}
	frac := mp2.ECorr / (efci - res.Energy)
	if frac < 0.3 || frac > 1.7 {
		t.Fatalf("MP2 recovers %.2f of FCI correlation; implausible", frac)
	}
	if mp2.ETotal != res.Energy+mp2.ECorr {
		t.Fatal("ETotal inconsistent")
	}
}

// A bigger basis recovers more correlation energy.
func TestMP2BasisSetTrend(t *testing.T) {
	mol := chem.Hydrogen2(0.74)
	small, err := MP2(runSCF(t, mol, "sto-3g"))
	if err != nil {
		t.Fatal(err)
	}
	big, err := MP2(runSCF(t, mol, "cc-pvdz"))
	if err != nil {
		t.Fatal(err)
	}
	if big.ECorr >= small.ECorr {
		t.Fatalf("cc-pVDZ correlation %g not below STO-3G %g", big.ECorr, small.ECorr)
	}
}

// MP2 on methane: sensible magnitude, nonzero same-spin part.
func TestMP2Methane(t *testing.T) {
	res := runSCF(t, chem.Methane(), "sto-3g")
	mp2, err := MP2(res)
	if err != nil {
		t.Fatal(err)
	}
	if mp2.ECorr >= -0.01 || mp2.ECorr < -0.5 {
		t.Fatalf("CH4/STO-3G MP2 correlation %g implausible", mp2.ECorr)
	}
	if mp2.SameSpin >= 0 || mp2.OppositeSpin >= 0 {
		t.Fatal("spin components must both be negative")
	}
	if math.Abs(mp2.SameSpin+mp2.OppositeSpin-mp2.ECorr) > 1e-12 {
		t.Fatal("spin decomposition inconsistent")
	}
}

func TestMP2RequiresOrbitals(t *testing.T) {
	res := &scf.Result{Converged: true}
	if _, err := MP2(res); err == nil {
		t.Fatal("expected error without orbitals")
	}
}
