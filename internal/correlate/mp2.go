// Package correlate implements post-Hartree-Fock electron correlation for
// closed shells: MP2 (second-order Moller-Plesset perturbation theory) on
// canonical SCF orbitals, and an exact full-CI solver for two-electron
// systems used as a correlation oracle in tests. The paper motivates HF
// as "the starting point for accurate electronic correlation methods";
// this package is the first such consumer of the converged orbitals.
package correlate

import (
	"fmt"

	"gtfock/internal/basis"
	"gtfock/internal/integrals"
	"gtfock/internal/linalg"
	"gtfock/internal/scf"
)

// TransformMO performs the O(N^5) four-index transformation of an AO
// tensor to the MO basis given orbital coefficients c (AO x MO):
// (pq|rs)_MO = sum C_mp C_nq C_lr C_ss' (mn|ls').
func TransformMO(ao []float64, c *linalg.Matrix) []float64 {
	n := c.Rows
	nmo := c.Cols
	cur := ao
	dims := [4]int{n, n, n, n}
	// Transform one index at a time (always the leading one, then rotate).
	for pass := 0; pass < 4; pass++ {
		rest := dims[1] * dims[2] * dims[3]
		out := make([]float64, nmo*rest)
		for p := 0; p < nmo; p++ {
			dst := out[p*rest : (p+1)*rest]
			for m := 0; m < dims[0]; m++ {
				f := c.At(m, p)
				if f == 0 {
					continue
				}
				src := cur[m*rest : (m+1)*rest]
				for r, v := range src {
					dst[r] += f * v
				}
			}
		}
		// Rotate: move the transformed leading index to the back.
		rot := make([]float64, len(out))
		lead := nmo
		for a := 0; a < lead; a++ {
			for r := 0; r < rest; r++ {
				rot[r*lead+a] = out[a*rest+r]
			}
		}
		cur = rot
		dims = [4]int{dims[1], dims[2], dims[3], nmo}
	}
	return cur
}

// MP2Result holds the MP2 correlation result.
type MP2Result struct {
	ECorr        float64 // MP2 correlation energy (negative)
	ETotal       float64 // HF total + ECorr
	SameSpin     float64 // triplet-like component
	OppositeSpin float64 // singlet-like component
}

// MP2 computes the closed-shell MP2 correlation energy from a converged
// SCF result:
//
//	E2 = sum_{ijab} (ia|jb) [2 (ia|jb) - (ib|ja)] / (ei + ej - ea - eb)
//
// with i, j occupied and a, b virtual spatial orbitals.
func MP2(res *scf.Result) (*MP2Result, error) {
	if res.C == nil || len(res.OrbitalEnergies) == 0 {
		return nil, fmt.Errorf("correlate: SCF result lacks canonical orbitals")
	}
	if !res.Converged {
		return nil, fmt.Errorf("correlate: SCF not converged")
	}
	n := res.Basis.NumFuncs
	nocc := res.NOcc
	if nocc <= 0 || nocc >= n {
		return nil, fmt.Errorf("correlate: no virtual space (nocc=%d, n=%d)", nocc, n)
	}
	ao := integrals.AOTensor(res.Basis)
	mo := TransformMO(ao, res.C)
	eps := res.OrbitalEnergies

	at := func(p, q, r, s int) float64 { return mo[((p*n+q)*n+r)*n+s] }
	var e2, ss, os float64
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			for a := nocc; a < n; a++ {
				for b := nocc; b < n; b++ {
					iajb := at(i, a, j, b)
					ibja := at(i, b, j, a)
					denom := eps[i] + eps[j] - eps[a] - eps[b]
					os += iajb * iajb / denom
					ss += iajb * (iajb - ibja) / denom
					e2 += iajb * (2*iajb - ibja) / denom
				}
			}
		}
	}
	return &MP2Result{
		ECorr:        e2,
		ETotal:       res.Energy + e2,
		SameSpin:     ss,
		OppositeSpin: os,
	}, nil
}

// FCI2e solves the two-electron Schroedinger equation exactly in the
// given basis by diagonalizing the spatial two-particle Hamiltonian
// H[(p,q),(r,s)] = h_pr d_qs + h_qs d_pr + (pr|qs) over the full n^2
// orbital-product space (the symmetric/singlet ground state is the global
// ground state for two electrons). Returns the total energy including
// nuclear repulsion. It is the correlation oracle for H2-like systems.
func FCI2e(bs *basis.Set) (float64, error) {
	if bs.Mol.NumElectrons() != 2 {
		return 0, fmt.Errorf("correlate: FCI2e requires a 2-electron system, got %d",
			bs.Mol.NumElectrons())
	}
	n := bs.NumFuncs
	// Orthonormal MO-like basis from the core Hamiltonian (any orthonormal
	// set works; this one is well-conditioned).
	s := integrals.Overlap(bs)
	x := linalg.InvSqrtSym(s, 0)
	hcore := integrals.CoreHamiltonian(bs)
	hPrime := linalg.MatMul(linalg.MatMul(x.T(), hcore), x)
	eig := linalg.EigSym(hPrime)
	c := linalg.MatMul(x, eig.Vectors)

	h := linalg.MatMul(linalg.MatMul(c.T(), hcore), c)
	mo := TransformMO(integrals.AOTensor(bs), c)
	at := func(p, q, r, s int) float64 { return mo[((p*n+q)*n+r)*n+s] }

	dim := n * n
	hmat := linalg.NewMatrix(dim, dim)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			row := p*n + q
			for r := 0; r < n; r++ {
				for ss := 0; ss < n; ss++ {
					col := r*n + ss
					var v float64
					if q == ss {
						v += h.At(p, r)
					}
					if p == r {
						v += h.At(q, ss)
					}
					v += at(p, r, q, ss)
					hmat.Set(row, col, v)
				}
			}
		}
	}
	evals := linalg.EigSym(hmat).Values
	return evals[0] + bs.Mol.NuclearRepulsion(), nil
}
