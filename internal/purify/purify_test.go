package purify

import (
	"math"
	"math/rand"
	"testing"

	"gtfock/internal/dist"
	"gtfock/internal/linalg"
)

func randSymmetric(rng *rand.Rand, n int) *linalg.Matrix {
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestInitialGuessProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 5, 12} {
		h := randSymmetric(rng, n)
		for nocc := 1; nocc < n; nocc++ {
			rho := InitialGuess(h, nocc)
			if math.Abs(rho.Trace()-float64(nocc)) > 1e-10 {
				t.Fatalf("n=%d nocc=%d: trace %g", n, nocc, rho.Trace())
			}
			eig := linalg.EigSym(rho)
			if eig.Values[0] < -1e-10 || eig.Values[n-1] > 1+1e-10 {
				t.Fatalf("spectrum [%g, %g] outside [0,1]",
					eig.Values[0], eig.Values[n-1])
			}
		}
	}
}

// Purification must converge to the spectral projector onto the nocc
// lowest eigenvectors of h.
func TestCanonicalMatchesEigenprojector(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 9, 16} {
		h := randSymmetric(rng, n)
		nocc := n / 2
		rho, iters, err := Canonical(h, nocc, 1e-12, 300, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if iters <= 1 {
			t.Fatalf("suspiciously fast: %d iterations", iters)
		}
		// Reference projector from the eigensolver.
		eig := linalg.EigSym(h)
		ref := linalg.NewMatrix(n, n)
		for k := 0; k < nocc; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					ref.Add(i, j, eig.Vectors.At(i, k)*eig.Vectors.At(j, k))
				}
			}
		}
		if d := linalg.MaxAbsDiff(rho, ref); d > 1e-6 {
			t.Fatalf("n=%d: |rho - projector| = %g", n, d)
		}
		// Idempotency and trace.
		rho2 := linalg.MatMul(rho, rho)
		if d := linalg.MaxAbsDiff(rho, rho2); d > 1e-6 {
			t.Fatalf("not idempotent: %g", d)
		}
		if math.Abs(rho.Trace()-float64(nocc)) > 1e-8 {
			t.Fatalf("trace drifted: %g", rho.Trace())
		}
	}
}

// Degenerate gap case must still converge when the gap is clean.
func TestCanonicalDiagonal(t *testing.T) {
	h := linalg.NewMatrix(4, 4)
	for i, v := range []float64{-2, -1, 1, 2} {
		h.Set(i, i, v)
	}
	rho, _, err := Canonical(h, 2, 1e-12, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.NewMatrix(4, 4)
	want.Set(0, 0, 1)
	want.Set(1, 1, 1)
	if linalg.MaxAbsDiff(rho, want) > 1e-8 {
		t.Fatalf("rho = %v", rho)
	}
}

func TestCanonicalRejectsBadNocc(t *testing.T) {
	h := linalg.NewMatrix(3, 3)
	if _, _, err := Canonical(h, 5, 0, 0, nil); err == nil {
		t.Fatal("expected error for nocc > n")
	}
}

func TestSUMMAMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{6, 6, 6}, {10, 7, 9}, {17, 17, 17}, {5, 13, 4}} {
		a := linalg.NewMatrix(dims[0], dims[1])
		b := linalg.NewMatrix(dims[1], dims[2])
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		want := linalg.MatMul(a, b)
		for _, grid := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {4, 4}} {
			mul := NewSUMMAMul(grid[0], grid[1])
			got := mul.MatMul(a, b)
			if d := linalg.MaxAbsDiff(want, got); d > 1e-11 {
				t.Fatalf("dims %v grid %v: diff %g", dims, grid, d)
			}
			if mul.Stats.CallsAvg() <= 0 {
				t.Fatal("SUMMA recorded no communication")
			}
		}
	}
}

func TestCanonicalWithSUMMA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randSymmetric(rng, 12)
	serial, _, err := Canonical(h, 5, 1e-12, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	mul := NewSUMMAMul(2, 2)
	distRho, iters, err := Canonical(h, 5, 1e-12, 300, mul)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(serial, distRho); d > 1e-9 {
		t.Fatalf("SUMMA purification differs by %g", d)
	}
	if mul.Products != 2*iters {
		t.Fatalf("expected 2 products/iteration, got %d for %d iters",
			mul.Products, iters)
	}
}

func TestSimulatedTimeScales(t *testing.T) {
	cfg := dist.Lonestar()
	t1 := SimulatedTime(2250, 1, 90, cfg)
	t9 := SimulatedTime(2250, 9, 90, cfg)
	if t9 >= t1 {
		t.Fatalf("no speedup: %g -> %g", t1, t9)
	}
	if t1 <= 0 {
		t.Fatal("non-positive time")
	}
}
