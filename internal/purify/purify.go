// Package purify implements the diagonalization-free density matrix
// computation used in the paper's Sec. IV-E: canonical (trace-conserving)
// purification [28] with the distributed matrix multiplications performed
// by the SUMMA algorithm [29] over the same 2D-blocked process grid as the
// Fock matrix — "the distribution of F and D is exactly the distribution
// needed for the SUMMA algorithm".
package purify

import (
	"fmt"
	"math"

	"gtfock/internal/dist"
	"gtfock/internal/linalg"
)

// DefaultTol is the idempotency tolerance Tr(rho - rho^2) < tol.
const DefaultTol = 1e-10

// InitialGuess returns the trace-correct linear map of the effective
// Hamiltonian h (in an orthogonal basis) onto [0, 1]:
//
//	rho_0 = lambda*(mu*I - h) + (nocc/n)*I,
//
// with mu = tr(h)/n and lambda chosen from Gershgorin spectral bounds so
// that the spectrum of rho_0 lies in [0, 1] and tr(rho_0) = nocc.
func InitialGuess(h *linalg.Matrix, nocc int) *linalg.Matrix {
	n := h.Rows
	hmin, hmax := h.Gershgorin()
	mu := h.Trace() / float64(n)
	q := float64(nocc) / float64(n)
	lambda := math.Inf(1)
	if hmax > mu {
		lambda = q / (hmax - mu)
	}
	if mu > hmin {
		if l2 := (1 - q) / (mu - hmin); l2 < lambda {
			lambda = l2
		}
	}
	if math.IsInf(lambda, 1) {
		lambda = 0 // h is a multiple of I
	}
	rho := h.Clone().Scale(-lambda)
	for i := 0; i < n; i++ {
		rho.Add(i, i, lambda*mu+q)
	}
	return rho
}

// Multiplier abstracts the matrix product used by the purification loop so
// the same iteration runs serially or over a distributed SUMMA grid.
type Multiplier interface {
	MatMul(a, b *linalg.Matrix) *linalg.Matrix
}

// serialMul is the plain single-process multiplier.
type serialMul struct{}

func (serialMul) MatMul(a, b *linalg.Matrix) *linalg.Matrix { return linalg.MatMul(a, b) }

// Canonical runs canonical purification on the effective Hamiltonian h (in
// an orthogonal basis) for nocc occupied orbitals, returning the
// idempotent density rho (tr = nocc), the iteration count, and an error if
// the loop fails to converge. Pass mul=nil for serial execution.
func Canonical(h *linalg.Matrix, nocc int, tol float64, maxIter int, mul Multiplier) (*linalg.Matrix, int, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	if mul == nil {
		mul = serialMul{}
	}
	if nocc < 0 || nocc > h.Rows {
		return nil, 0, fmt.Errorf("purify: nocc=%d out of range for n=%d", nocc, h.Rows)
	}
	rho := InitialGuess(h, nocc)
	for it := 1; it <= maxIter; it++ {
		rho2 := mul.MatMul(rho, rho)
		rho3 := mul.MatMul(rho2, rho)
		trRho := rho.Trace()
		tr2 := rho2.Trace()
		tr3 := rho3.Trace()
		denomTr := trRho - tr2 // tr(rho - rho^2) >= 0
		if math.Abs(denomTr) < tol {
			return rho, it, nil
		}
		cn := (tr2 - tr3) / denomTr
		next := linalg.NewMatrix(rho.Rows, rho.Cols)
		if cn >= 0.5 {
			// rho <- ((1+cn) rho^2 - rho^3) / cn
			next.AXPY((1+cn)/cn, rho2)
			next.AXPY(-1/cn, rho3)
		} else {
			// rho <- ((1-2cn) rho + (1+cn) rho^2 - rho^3) / (1-cn)
			next.AXPY((1-2*cn)/(1-cn), rho)
			next.AXPY((1+cn)/(1-cn), rho2)
			next.AXPY(-1/(1-cn), rho3)
		}
		rho = next
	}
	return rho, maxIter, fmt.Errorf("purify: no convergence in %d iterations", maxIter)
}

// SUMMAMul is a Multiplier that executes every product with the SUMMA
// algorithm over a prow x pcol goroutine process grid of dist
// GlobalArrays, accounting communication into Stats.
type SUMMAMul struct {
	Prow, Pcol int
	Stats      *dist.RunStats
	// Iterations counts the matrix multiplications performed.
	Products int
}

// NewSUMMAMul creates a SUMMA multiplier on a prow x pcol grid.
func NewSUMMAMul(prow, pcol int) *SUMMAMul {
	if prow <= 0 {
		prow = 1
	}
	if pcol <= 0 {
		pcol = 1
	}
	return &SUMMAMul{Prow: prow, Pcol: pcol, Stats: dist.NewRunStats(prow * pcol)}
}

// MatMul computes a*b with SUMMA: process (i,j) owns block C_ij and
// accumulates sum_k A_ik * B_kj, fetching the A panel from its grid row
// and the B panel from its grid column for every k step.
func (s *SUMMAMul) MatMul(a, b *linalg.Matrix) *linalg.Matrix {
	if a.Cols != b.Rows {
		panic("purify: SUMMA shape mismatch")
	}
	s.Products++
	grid := dist.NewGrid2D(s.Prow, s.Pcol,
		dist.UniformCuts(a.Rows, s.Prow), dist.UniformCuts(b.Cols, s.Pcol))
	gaA := dist.NewGlobalArray(dist.NewGrid2D(s.Prow, s.Pcol,
		dist.UniformCuts(a.Rows, s.Prow), dist.UniformCuts(a.Cols, s.Pcol)), s.Stats)
	gaA.LoadMatrix(a)
	gaB := dist.NewGlobalArray(dist.NewGrid2D(s.Prow, s.Pcol,
		dist.UniformCuts(b.Rows, s.Prow), dist.UniformCuts(b.Cols, s.Pcol)), s.Stats)
	gaB.LoadMatrix(b)
	gaC := dist.NewGlobalArray(grid, s.Stats)

	// k panels along the contraction dimension, one per grid column.
	nk := s.Pcol
	if s.Prow > nk {
		nk = s.Prow
	}
	panelCuts := dist.UniformCuts(a.Cols, nk)

	dist.RunProcs(s.Prow*s.Pcol, func(rank int) {
		i, j := grid.Coords(rank)
		r0, r1 := grid.RowCuts[i], grid.RowCuts[i+1]
		c0, c1 := grid.ColCuts[j], grid.ColCuts[j+1]
		if r0 >= r1 || c0 >= c1 {
			return
		}
		rows, cols := r1-r0, c1-c0
		cLocal := make([]float64, rows*cols)
		for k := 0; k < nk; k++ {
			k0, k1 := panelCuts[k], panelCuts[k+1]
			if k0 >= k1 {
				continue
			}
			kw := k1 - k0
			aPanel := make([]float64, rows*kw)
			bPanel := make([]float64, kw*cols)
			gaA.Get(rank, r0, r1, k0, k1, aPanel, kw)
			gaB.Get(rank, k0, k1, c0, c1, bPanel, cols)
			// cLocal += aPanel * bPanel
			for r := 0; r < rows; r++ {
				for kk := 0; kk < kw; kk++ {
					av := aPanel[r*kw+kk]
					if av == 0 {
						continue
					}
					brow := bPanel[kk*cols : (kk+1)*cols]
					crow := cLocal[r*cols : (r+1)*cols]
					for c, bv := range brow {
						crow[c] += av * bv
					}
				}
			}
		}
		gaC.Put(rank, r0, r1, c0, c1, cLocal, cols)
	})
	return gaC.ToMatrix()
}

// SimulatedTime models the virtual time of `products` SUMMA products of
// n x n matrices plus trace work, on `nodes` nodes (Sec. IV-E / Table IX):
// per product each process computes 2n^3/p flops at the machine's
// realized dense rate, transfers 2 n^2/sqrt(p) elements in 2*sqrt(p)
// panel fetches, and pays a synchronization overhead per panel step.
func SimulatedTime(n, nodes, products int, cfg dist.Config) float64 {
	p := float64(nodes)
	eff := cfg.DenseEfficiency
	if eff <= 0 {
		eff = 1
	}
	flops := 2 * math.Pow(float64(n), 3) / p
	rate := cfg.GFlopsPerNode * 1e9 * eff
	comp := flops / rate
	sq := math.Sqrt(p)
	bytes := int64(2 * float64(n) * float64(n) / sq * 8)
	comm := cfg.CommTime(int64(2*sq), bytes)
	sync := sq * cfg.SummaStepOverheadSec
	return float64(products) * (comp + comm + sync)
}
