package metrics

import "sync/atomic"

// Serve collects the HF service's admission, queueing and shedding
// counters (DESIGN.md §12). All methods are safe for concurrent use and
// nil-safe, mirroring RPC, so instrumented code never branches on
// whether metrics are wired.
type Serve struct {
	submitted atomic.Int64
	admitted  atomic.Int64

	// Rejections by cause: the queue-depth bound, a per-tenant quota, or
	// the resident-memory budget. Split so an overload report can say
	// *which* limit is doing the protecting.
	rejectedQueue atomic.Int64
	rejectedQuota atomic.Int64
	rejectedMem   atomic.Int64

	shed      atomic.Int64 // queued jobs dropped by the degradation ladder
	parked    atomic.Int64 // running jobs checkpointed and requeued
	resumed   atomic.Int64 // parked jobs that re-entered execution
	retries   atomic.Int64 // job-level retries after shard failure
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64 // deadline-exceeded or client-canceled jobs

	// HA service-tier counters (DESIGN.md §13): jobs this peer adopted
	// from a crashed owner, job-ownership leases the registry expired,
	// and status/event queries answered with a 307 to the owning peer.
	adopted        atomic.Int64
	leaseExpiries  atomic.Int64
	ownerRedirects atomic.Int64

	queueDepth     atomic.Int64
	queueHighWater atomic.Int64
	running        atomic.Int64

	// queueWait and runTime are job latency phases in nanoseconds:
	// admission→dispatch and dispatch→done.
	queueWait histAtomic
	runTime   histAtomic
}

// NewServe returns an empty Serve counter set.
func NewServe() *Serve { return &Serve{} }

func (s *Serve) AddSubmitted() {
	if s != nil {
		s.submitted.Add(1)
	}
}

func (s *Serve) AddAdmitted() {
	if s != nil {
		s.admitted.Add(1)
	}
}

// RejectCause names which admission limit refused a job.
type RejectCause int

const (
	RejectQueueFull RejectCause = iota
	RejectQuota
	RejectMemory
)

func (s *Serve) AddRejected(cause RejectCause) {
	if s == nil {
		return
	}
	switch cause {
	case RejectQuota:
		s.rejectedQuota.Add(1)
	case RejectMemory:
		s.rejectedMem.Add(1)
	default:
		s.rejectedQueue.Add(1)
	}
}

func (s *Serve) AddShed() {
	if s != nil {
		s.shed.Add(1)
	}
}

func (s *Serve) AddParked() {
	if s != nil {
		s.parked.Add(1)
	}
}

func (s *Serve) AddResumed() {
	if s != nil {
		s.resumed.Add(1)
	}
}

func (s *Serve) AddRetry() {
	if s != nil {
		s.retries.Add(1)
	}
}

func (s *Serve) AddCompleted() {
	if s != nil {
		s.completed.Add(1)
	}
}

func (s *Serve) AddFailed() {
	if s != nil {
		s.failed.Add(1)
	}
}

func (s *Serve) AddCanceled() {
	if s != nil {
		s.canceled.Add(1)
	}
}

func (s *Serve) AddAdopted() {
	if s != nil {
		s.adopted.Add(1)
	}
}

func (s *Serve) AddLeaseExpiry() {
	if s != nil {
		s.leaseExpiries.Add(1)
	}
}

func (s *Serve) AddOwnerRedirect() {
	if s != nil {
		s.ownerRedirects.Add(1)
	}
}

// Adopted, LeaseExpiries and OwnerRedirects read the HA counters (the
// expvar surface publishes them individually by name).
func (s *Serve) Adopted() int64 {
	if s == nil {
		return 0
	}
	return s.adopted.Load()
}

func (s *Serve) LeaseExpiries() int64 {
	if s == nil {
		return 0
	}
	return s.leaseExpiries.Load()
}

func (s *Serve) OwnerRedirects() int64 {
	if s == nil {
		return 0
	}
	return s.ownerRedirects.Load()
}

// SetQueueDepth records the instantaneous queue depth and maintains the
// high-water mark (the bound the overload test asserts on).
func (s *Serve) SetQueueDepth(d int) {
	if s == nil {
		return
	}
	s.queueDepth.Store(int64(d))
	for {
		hw := s.queueHighWater.Load()
		if int64(d) <= hw || s.queueHighWater.CompareAndSwap(hw, int64(d)) {
			return
		}
	}
}

func (s *Serve) SetRunning(n int) {
	if s != nil {
		s.running.Store(int64(n))
	}
}

func (s *Serve) ObserveQueueWait(ns int64) {
	if s != nil {
		var h Hist
		h.Observe(ns)
		s.queueWait.merge(&h)
	}
}

func (s *Serve) ObserveRunTime(ns int64) {
	if s != nil {
		var h Hist
		h.Observe(ns)
		s.runTime.merge(&h)
	}
}

// ServeSnapshot is the JSON-facing view of Serve, exposed at /v1/stats.
type ServeSnapshot struct {
	Submitted      int64        `json:"submitted"`
	Admitted       int64        `json:"admitted"`
	RejectedQueue  int64        `json:"rejected_queue"`
	RejectedQuota  int64        `json:"rejected_quota"`
	RejectedMem    int64        `json:"rejected_mem"`
	Shed           int64        `json:"shed"`
	Parked         int64        `json:"parked"`
	Resumed        int64        `json:"resumed"`
	Retries        int64        `json:"retries"`
	Completed      int64        `json:"completed"`
	Failed         int64        `json:"failed"`
	Canceled       int64        `json:"canceled"`
	Adopted        int64        `json:"adopted,omitempty"`
	LeaseExpiries  int64        `json:"lease_expiries,omitempty"`
	OwnerRedirects int64        `json:"owner_redirects,omitempty"`
	QueueDepth     int64        `json:"queue_depth"`
	QueueHighWater int64        `json:"queue_high_water"`
	Running        int64        `json:"running"`
	QueueWaitNs    HistSnapshot `json:"queue_wait_ns"`
	RunTimeNs      HistSnapshot `json:"run_time_ns"`
}

// Snapshot returns a point-in-time copy of the counters.
func (s *Serve) Snapshot() ServeSnapshot {
	if s == nil {
		return ServeSnapshot{}
	}
	return ServeSnapshot{
		Submitted:      s.submitted.Load(),
		Admitted:       s.admitted.Load(),
		RejectedQueue:  s.rejectedQueue.Load(),
		RejectedQuota:  s.rejectedQuota.Load(),
		RejectedMem:    s.rejectedMem.Load(),
		Shed:           s.shed.Load(),
		Parked:         s.parked.Load(),
		Resumed:        s.resumed.Load(),
		Retries:        s.retries.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		Canceled:       s.canceled.Load(),
		Adopted:        s.adopted.Load(),
		LeaseExpiries:  s.leaseExpiries.Load(),
		OwnerRedirects: s.ownerRedirects.Load(),
		QueueDepth:     s.queueDepth.Load(),
		QueueHighWater: s.queueHighWater.Load(),
		Running:        s.running.Load(),
		QueueWaitNs:    s.queueWait.snapshot(),
		RunTimeNs:      s.runTime.snapshot(),
	}
}
