package metrics

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
	"sync/atomic"
)

var (
	publishOnce sync.Once
	currentReg  atomic.Pointer[Registry]
)

// Publish exposes reg as the expvar "fock_metrics" (on /debug/vars).
// Safe to call repeatedly — later calls swap which registry the variable
// reads, since expvar names can be published only once per process.
func Publish(reg *Registry) {
	currentReg.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("fock_metrics", expvar.Func(func() any {
			return currentReg.Load().Snapshot()
		}))
	})
}

// StartDebugServer publishes reg and serves the process-wide debug mux —
// /debug/vars (expvar, including fock_metrics) and /debug/pprof/ — on
// addr in a background goroutine. It returns the bound address (useful
// with ":0") and never stops serving; the endpoint is an inspection aid
// for the lifetime of a run, not a managed service.
func StartDebugServer(addr string, reg *Registry) (string, error) {
	Publish(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
