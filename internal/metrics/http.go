package metrics

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
	"sync/atomic"
)

var (
	publishOnce sync.Once
	currentReg  atomic.Pointer[Registry]
)

// Publish exposes reg as the expvar "fock_metrics" (on /debug/vars).
// Safe to call repeatedly — later calls swap which registry the variable
// reads, since expvar names can be published only once per process.
func Publish(reg *Registry) {
	currentReg.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("fock_metrics", expvar.Func(func() any {
			return currentReg.Load().Snapshot()
		}))
	})
}

var publishedFuncs sync.Map // expvar name -> *atomic.Value holding func() any

// PublishFunc exposes fn as the expvar name (on /debug/vars). Safe to
// call repeatedly — expvar allows each name only once per process, so
// later calls swap which function the variable reads. Used to export
// shard, fleet-membership and placement state alongside fock_metrics.
func PublishFunc(name string, fn func() any) {
	holder, loaded := publishedFuncs.LoadOrStore(name, &atomic.Value{})
	h := holder.(*atomic.Value)
	h.Store(fn)
	if !loaded {
		expvar.Publish(name, expvar.Func(func() any {
			return h.Load().(func() any)()
		}))
	}
}

// StartDebugServer publishes reg and serves the process-wide debug mux —
// /debug/vars (expvar, including fock_metrics) and /debug/pprof/ — on
// addr in a background goroutine. It returns the bound address (useful
// with ":0") and never stops serving; the endpoint is an inspection aid
// for the lifetime of a run, not a managed service.
func StartDebugServer(addr string, reg *Registry) (string, error) {
	Publish(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
