package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestHistBucketsAndQuantiles(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 5, 8, 100, 1000} {
		h.Observe(v)
	}
	if h.N != 8 {
		t.Fatalf("N = %d, want 8", h.N)
	}
	if h.Sum != 1119 {
		t.Fatalf("Sum = %d, want 1119", h.Sum)
	}
	if h.Max != 1000 {
		t.Fatalf("Max = %d, want 1000", h.Max)
	}
	// 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 5 -> 3; 8 -> 4;
	// 100 -> 7; 1000 -> 10.
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 1, 4: 1, 7: 1, 10: 1}
	for b, c := range h.Counts {
		if c != want[b] {
			t.Fatalf("bucket %d = %d, want %d", b, c, want[b])
		}
	}
	s := snapshotCounts(h.Counts, h.N, h.Sum, h.Max)
	// 4th of 8 observations sits in bucket 2 ([2,4)): p50 ~ 2*sqrt2/... =
	// geometric midpoint of [2,4) ~ 2.83 -> 2.
	if s.P50 != 2 {
		t.Fatalf("P50 = %d, want 2", s.P50)
	}
	if s.P99 < 512 || s.P99 > 1024 {
		t.Fatalf("P99 = %d, want within bucket [512,1024)", s.P99)
	}
	if s.Mean != 1119.0/8 {
		t.Fatalf("Mean = %v", s.Mean)
	}
}

func TestHistEmptySnapshotIsDefined(t *testing.T) {
	var h histAtomic
	s := h.snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestRegistryMergeAndDiscard(t *testing.T) {
	r := NewRegistry(2)
	var s Sample
	s.Tasks.Observe(100)
	s.Tasks.Observe(200)
	s.Steals.Observe(5000)
	s.GetCalls, s.GetBytes = 3, 4096
	s.AccCalls, s.AccBytes = 2, 2048
	s.GetRetries, s.AccRetries = 1, 2
	s.LeaseRenewals = 7
	r.Merge(0, &s)

	var dropped Sample
	dropped.Tasks.Observe(999) // fenced incarnation's work
	r.Discard(&dropped)

	snap := r.Snapshot()
	if snap.TasksTotal != 2 {
		t.Fatalf("TasksTotal = %d, want 2 (discarded sample leaked in?)", snap.TasksTotal)
	}
	if snap.StealsTotal != 1 {
		t.Fatalf("StealsTotal = %d, want 1", snap.StealsTotal)
	}
	if snap.BytesTotal != 4096+2048 {
		t.Fatalf("BytesTotal = %d", snap.BytesTotal)
	}
	if snap.DiscardedSamples != 1 || snap.DroppedObs != 1 {
		t.Fatalf("discard accounting = %d samples, %d obs; want 1, 1",
			snap.DiscardedSamples, snap.DroppedObs)
	}
	w := snap.Workers[0]
	if w.TaskNS.Sum != 300 || w.GetRetries != 1 || w.AccRetries != 2 ||
		w.LeaseRenewals != 7 || w.Commits != 1 {
		t.Fatalf("worker 0 snapshot wrong: %+v", w)
	}
	if snap.Workers[1].Commits != 0 {
		t.Fatal("worker 1 should be untouched")
	}

	// An empty sample discard is a no-op.
	r.Discard(&Sample{})
	if got := r.Snapshot().DiscardedSamples; got != 1 {
		t.Fatalf("empty-sample discard counted: %d", got)
	}
}

// The ERI dispatch split must merge per rank, total across ranks, and
// produce the general-path fraction; a sample holding only dispatch
// counters must not count as empty (it would be silently droppable).
func TestRegistryQuartetDispatchSplit(t *testing.T) {
	r := NewRegistry(2)
	a := Sample{QuartetsFastSP: 60, QuartetsFastGen: 30, QuartetsGeneral: 0}
	if a.empty() {
		t.Fatal("sample with only dispatch counters reported empty")
	}
	b := Sample{QuartetsFastSP: 0, QuartetsFastGen: 5, QuartetsGeneral: 5}
	r.Merge(0, &a)
	r.Merge(1, &b)
	snap := r.Snapshot()
	if snap.QuartetsFastSP != 60 || snap.QuartetsFastGen != 35 || snap.QuartetsGeneral != 5 {
		t.Fatalf("dispatch totals wrong: %+v", snap)
	}
	if got, want := snap.QuartetsGeneralFrac, 0.05; got != want {
		t.Fatalf("QuartetsGeneralFrac = %v, want %v", got, want)
	}
	if w := snap.Workers[1]; w.QuartetsFastGen != 5 || w.QuartetsGeneral != 5 {
		t.Fatalf("worker 1 dispatch split wrong: %+v", w)
	}
}

func TestRegistryNilIsSafe(t *testing.T) {
	var r *Registry
	var s Sample
	s.Tasks.Observe(1)
	r.Merge(0, &s) // must not panic
	r.Discard(&s)
	if r.P() != 0 {
		t.Fatal("nil registry P != 0")
	}
	if snap := r.Snapshot(); len(snap.Workers) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestSampleReset(t *testing.T) {
	var s Sample
	s.Tasks.Observe(1)
	s.GetCalls = 5
	if s.empty() {
		t.Fatal("sample with observations reported empty")
	}
	s.Reset()
	if !s.empty() {
		t.Fatal("Reset did not empty the sample")
	}
}

// Concurrent merges from many "workers" with snapshots racing them — the
// live-expvar read path. Run under -race in CI.
func TestRegistryConcurrentMergeSnapshot(t *testing.T) {
	const workers, episodes = 8, 50
	r := NewRegistry(workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				var s Sample
				s.Tasks.Observe(int64(rank*1000 + e))
				s.GetBytes = 8
				r.Merge(rank, &s)
			}
		}(rank)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	snap := r.Snapshot()
	if snap.TasksTotal != workers*episodes {
		t.Fatalf("TasksTotal = %d, want %d", snap.TasksTotal, workers*episodes)
	}
	if snap.BytesTotal != workers*episodes*8 {
		t.Fatalf("BytesTotal = %d", snap.BytesTotal)
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	r := NewRegistry(1)
	var s Sample
	s.Tasks.Observe(1500)
	r.Merge(0, &s)
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.TasksTotal != 1 || back.Workers[0].TaskNS.Max != 1500 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, ok := back.Workers[0].TaskNS.Buckets["2048"]; !ok {
		t.Fatalf("1500 should land in bucket 2048: %v", back.Workers[0].TaskNS.Buckets)
	}
}

func TestRPCCounters(t *testing.T) {
	var c RPC
	for i := 0; i < 4; i++ {
		c.ObserveCall(int64(1000 * (i + 1)))
	}
	c.AddRetry()
	c.AddRetry()
	c.AddFailure()
	c.AddDial()
	c.AddReconnect()
	c.AddReset()
	c.AddDupSend()
	c.AddPartitioned()
	snap := c.Snapshot()
	if snap.Calls != 4 || snap.LatencyNS.Count != 4 || snap.LatencyNS.Max != 4000 {
		t.Fatalf("calls/latency wrong: %+v", snap)
	}
	if snap.Retries != 2 || snap.Failures != 1 || snap.Dials != 1 ||
		snap.Reconnects != 1 || snap.Resets != 1 || snap.DupSends != 1 || snap.Partitioned != 1 {
		t.Fatalf("counter snapshot wrong: %+v", snap)
	}
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back RPCSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Calls != 4 || back.Retries != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// Nil-receiver calls must be safe: the client runs without metrics.
func TestRPCNilSafe(t *testing.T) {
	var c *RPC
	c.ObserveCall(1)
	c.AddRetry()
	c.AddFailure()
	c.AddDial()
	c.AddReconnect()
	c.AddReset()
	c.AddDupSend()
	c.AddPartitioned()
	if snap := c.Snapshot(); snap.Calls != 0 {
		t.Fatalf("nil snapshot not zero: %+v", snap)
	}
}
