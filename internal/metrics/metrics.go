// Package metrics is the low-overhead measurement layer of the real-mode
// Fock build: per-worker histograms and counters for the quantities the
// paper's evaluation is built on (task service time, steal latency,
// one-sided transfer volume, retries, lease renewals; Sec. IV, Tables
// V-VIII).
//
// The collection protocol keeps the counts exactly-once under fault
// recovery: a worker accumulates into a private Sample (single-writer,
// no synchronization) and merges it into the shared Registry only when
// the corresponding work commits to the global F. A fenced or crashed
// incarnation's sample is dropped — counted in DiscardedSamples but
// never merged — so a task re-executed after recovery appears exactly
// once in the merged histograms, mirroring the epoch fence on the
// accumulate path.
package metrics

import (
	"encoding/json"
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
)

// nbuckets spans int64: bucket b counts observations in [2^(b-1), 2^b).
const nbuckets = 64

// Hist is a power-of-two-bucket histogram of positive int64 observations
// (nanoseconds or bytes). The zero value is ready to use. It is a plain,
// single-writer value inside a Sample; the Registry holds the atomic
// mirror (histAtomic).
type Hist struct {
	Counts [nbuckets]int64
	N      int64
	Sum    int64
	Max    int64
}

// Observe records v; non-positive observations count into bucket 0.
func (h *Hist) Observe(v int64) {
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.Counts[b%nbuckets]++
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// histAtomic is the concurrently-readable accumulation of merged Hists.
type histAtomic struct {
	counts [nbuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func (h *histAtomic) merge(s *Hist) {
	for i, c := range s.Counts {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.n.Add(s.N)
	h.sum.Add(s.Sum)
	for {
		old := h.max.Load()
		if s.Max <= old || h.max.CompareAndSwap(old, s.Max) {
			return
		}
	}
}

// HistSnapshot is the JSON-facing view of a histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	// Buckets maps the upper bound 2^b to its count, zero buckets elided.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func (h *histAtomic) snapshot() HistSnapshot {
	var counts [nbuckets]int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return snapshotCounts(counts, h.n.Load(), h.sum.Load(), h.max.Load())
}

func snapshotCounts(counts [nbuckets]int64, n, sum, max int64) HistSnapshot {
	s := HistSnapshot{Count: n, Sum: sum, Max: max}
	if n == 0 {
		return s
	}
	s.Mean = float64(sum) / float64(n)
	s.P50 = quantile(counts, n, 0.50)
	s.P95 = quantile(counts, n, 0.95)
	s.P99 = quantile(counts, n, 0.99)
	s.Buckets = map[string]int64{}
	for b, c := range counts {
		if c != 0 {
			s.Buckets[bucketLabel(b)] = c
		}
	}
	return s
}

func bucketLabel(b int) string {
	// Upper bound of bucket b is 2^b (bucket 0 holds v <= 1).
	if b >= 63 {
		return "inf"
	}
	return strconv.FormatInt(int64(1)<<b, 10)
}

// quantile returns the geometric midpoint of the bucket holding the
// q-quantile observation — a factor-sqrt(2) approximation, plenty for
// imbalance histograms.
func quantile(counts [nbuckets]int64, n int64, q float64) int64 {
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range counts {
		cum += c
		if cum >= rank {
			if b == 0 {
				return 0
			}
			lo := int64(1) << (b - 1)
			return int64(float64(lo) * math.Sqrt2)
		}
	}
	return 0
}

// Sample is one worker incarnation's private measurement buffer. It is
// written by exactly one goroutine and carries no synchronization; merge
// it into the Registry at commit time, or drop it if the incarnation is
// fenced.
type Sample struct {
	Tasks         Hist // task service time, ns
	Steals        Hist // successful steal latency (scan start to block landed), ns
	Flushes       Hist // commit/flush duration, ns
	GetCalls      int64
	GetBytes      int64
	AccCalls      int64
	AccBytes      int64
	GetRetries    int64
	AccRetries    int64
	LeaseRenewals int64
	StealFails    int64 // steal scans that came up dry

	// ERI dispatch split (from integrals.Stats deltas per task): quartets
	// served by the hand s/p kernels, by the generated d-class kernels,
	// and by the general MD recursion, so bench/serve output can report
	// what fraction of the integral work still takes the general path.
	QuartetsFastSP  int64
	QuartetsFastGen int64
	QuartetsGeneral int64
}

// empty reports whether the sample holds no observations at all.
func (s *Sample) empty() bool {
	return s.Tasks.N == 0 && s.Steals.N == 0 && s.Flushes.N == 0 &&
		s.GetCalls == 0 && s.AccCalls == 0 && s.GetRetries == 0 &&
		s.AccRetries == 0 && s.LeaseRenewals == 0 && s.StealFails == 0 &&
		s.QuartetsFastSP == 0 && s.QuartetsFastGen == 0 && s.QuartetsGeneral == 0
}

// Reset clears the sample for the next commit episode.
func (s *Sample) Reset() { *s = Sample{} }

// worker is the Registry's committed per-rank accumulation.
type worker struct {
	tasks, steals, flushes histAtomic
	getCalls, getBytes     atomic.Int64
	accCalls, accBytes     atomic.Int64
	getRetries, accRetries atomic.Int64
	leaseRenewals          atomic.Int64
	stealFails             atomic.Int64
	merges                 atomic.Int64

	quartetsFastSP  atomic.Int64
	quartetsFastGen atomic.Int64
	quartetsGeneral atomic.Int64
}

// Registry aggregates committed samples per worker rank. All methods are
// safe for concurrent use; Snapshot may run while a build is in flight
// (the expvar endpoint does exactly that) and sees a consistent-enough
// view for monitoring.
type Registry struct {
	workers   []worker
	discarded atomic.Int64
	dropped   atomic.Int64 // observations inside discarded samples
}

// NewRegistry creates a registry for n worker ranks.
func NewRegistry(n int) *Registry { return &Registry{workers: make([]worker, n)} }

// P returns the number of worker ranks.
func (r *Registry) P() int {
	if r == nil {
		return 0
	}
	return len(r.workers)
}

// Merge folds a committed sample into rank's totals. Nil-receiver safe so
// the disabled path costs one branch.
func (r *Registry) Merge(rank int, s *Sample) {
	if r == nil || rank < 0 || rank >= len(r.workers) {
		return
	}
	w := &r.workers[rank]
	w.tasks.merge(&s.Tasks)
	w.steals.merge(&s.Steals)
	w.flushes.merge(&s.Flushes)
	w.getCalls.Add(s.GetCalls)
	w.getBytes.Add(s.GetBytes)
	w.accCalls.Add(s.AccCalls)
	w.accBytes.Add(s.AccBytes)
	w.getRetries.Add(s.GetRetries)
	w.accRetries.Add(s.AccRetries)
	w.leaseRenewals.Add(s.LeaseRenewals)
	w.stealFails.Add(s.StealFails)
	w.quartetsFastSP.Add(s.QuartetsFastSP)
	w.quartetsFastGen.Add(s.QuartetsFastGen)
	w.quartetsGeneral.Add(s.QuartetsGeneral)
	w.merges.Add(1)
}

// Discard records that a sample was dropped uncommitted (fenced or
// crashed incarnation); its observations are counted as dropped but
// never merged.
func (r *Registry) Discard(s *Sample) {
	if r == nil || s.empty() {
		return
	}
	r.discarded.Add(1)
	r.dropped.Add(s.Tasks.N + s.Steals.N + s.Flushes.N)
}

// WorkerSnapshot is the JSON-facing per-rank view.
type WorkerSnapshot struct {
	Rank          int          `json:"rank"`
	TaskNS        HistSnapshot `json:"task_ns"`
	StealNS       HistSnapshot `json:"steal_ns"`
	FlushNS       HistSnapshot `json:"flush_ns"`
	GetCalls      int64        `json:"get_calls"`
	GetBytes      int64        `json:"get_bytes"`
	AccCalls      int64        `json:"acc_calls"`
	AccBytes      int64        `json:"acc_bytes"`
	GetRetries    int64        `json:"get_retries,omitempty"`
	AccRetries    int64        `json:"acc_retries,omitempty"`
	LeaseRenewals int64        `json:"lease_renewals,omitempty"`
	StealFails    int64        `json:"steal_fails,omitempty"`
	Commits       int64        `json:"commits"`

	QuartetsFastSP  int64 `json:"quartets_fast_sp,omitempty"`
	QuartetsFastGen int64 `json:"quartets_fast_gen,omitempty"`
	QuartetsGeneral int64 `json:"quartets_general,omitempty"`
}

// Snapshot is the JSON-facing registry view.
type Snapshot struct {
	Workers          []WorkerSnapshot `json:"workers"`
	TasksTotal       int64            `json:"tasks_total"`
	StealsTotal      int64            `json:"steals_total"`
	BytesTotal       int64            `json:"bytes_total"`
	DiscardedSamples int64            `json:"discarded_samples"`
	DroppedObs       int64            `json:"dropped_observations"`

	// ERI dispatch totals across ranks; QuartetsGeneralFrac is the
	// general-path fraction (0 when no quartets were recorded).
	QuartetsFastSP      int64   `json:"quartets_fast_sp,omitempty"`
	QuartetsFastGen     int64   `json:"quartets_fast_gen,omitempty"`
	QuartetsGeneral     int64   `json:"quartets_general,omitempty"`
	QuartetsGeneralFrac float64 `json:"quartets_general_frac,omitempty"`
}

// Snapshot captures the current committed totals.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	out := Snapshot{
		Workers:          make([]WorkerSnapshot, len(r.workers)),
		DiscardedSamples: r.discarded.Load(),
		DroppedObs:       r.dropped.Load(),
	}
	for i := range r.workers {
		w := &r.workers[i]
		ws := WorkerSnapshot{
			Rank:          i,
			TaskNS:        w.tasks.snapshot(),
			StealNS:       w.steals.snapshot(),
			FlushNS:       w.flushes.snapshot(),
			GetCalls:      w.getCalls.Load(),
			GetBytes:      w.getBytes.Load(),
			AccCalls:      w.accCalls.Load(),
			AccBytes:      w.accBytes.Load(),
			GetRetries:    w.getRetries.Load(),
			AccRetries:    w.accRetries.Load(),
			LeaseRenewals: w.leaseRenewals.Load(),
			StealFails:    w.stealFails.Load(),
			Commits:       w.merges.Load(),

			QuartetsFastSP:  w.quartetsFastSP.Load(),
			QuartetsFastGen: w.quartetsFastGen.Load(),
			QuartetsGeneral: w.quartetsGeneral.Load(),
		}
		out.Workers[i] = ws
		out.TasksTotal += ws.TaskNS.Count
		out.StealsTotal += ws.StealNS.Count
		out.BytesTotal += ws.GetBytes + ws.AccBytes
		out.QuartetsFastSP += ws.QuartetsFastSP
		out.QuartetsFastGen += ws.QuartetsFastGen
		out.QuartetsGeneral += ws.QuartetsGeneral
	}
	if total := out.QuartetsFastSP + out.QuartetsFastGen + out.QuartetsGeneral; total > 0 {
		out.QuartetsGeneralFrac = float64(out.QuartetsGeneral) / float64(total)
	}
	return out
}

// MarshalJSON serializes the current snapshot, so a *Registry can be
// handed directly to json.Marshal or published via expvar.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// ExpvarFunc adapts the registry to expvar.Publish(expvar.Func(...)).
func (r *Registry) ExpvarFunc() func() any {
	return func() any { return r.Snapshot() }
}

// RPC is the transport-level counter set of the network backend. Unlike
// worker Samples it is not merged at commit time: an RPC happened on the
// wire whether or not the work it carried ever commits, so the client
// records into it directly with atomics. All methods are nil-receiver
// safe so a client without metrics costs one branch per call.
type RPC struct {
	latency                  histAtomic // wall time of one RPC incl. its retries, ns
	calls, retries, failures atomic.Int64
	dials, reconnects        atomic.Int64
	resets, dupSends         atomic.Int64
	partitioned              atomic.Int64
	failovers, staleRetries  atomic.Int64
	placementRetries         atomic.Int64
	viewRefreshes            atomic.Int64
	blocksMigrated           atomic.Int64

	// Failure-cause split: a deadline that expired (overload — the peer
	// is slow or we are) versus a connection the peer tore down (faults,
	// restarts, kills). Reports that lump them together cannot tell a
	// saturated service from a dying one.
	deadlineExceeded atomic.Int64
	peerResets       atomic.Int64
}

// ObserveCall records one completed RPC (success or final failure) with
// its total wall time including retries.
func (c *RPC) ObserveCall(ns int64) {
	if c == nil {
		return
	}
	var h Hist
	h.Observe(ns)
	c.latency.merge(&h)
	c.calls.Add(1)
}

// AddRetry counts one retried attempt inside an RPC.
func (c *RPC) AddRetry() {
	if c != nil {
		c.retries.Add(1)
	}
}

// AddFailure counts one RPC abandoned past its retry budget or deadline.
func (c *RPC) AddFailure() {
	if c != nil {
		c.failures.Add(1)
	}
}

// AddDial counts one fresh connection established.
func (c *RPC) AddDial() {
	if c != nil {
		c.dials.Add(1)
	}
}

// AddReconnect counts one connection re-established after an error.
func (c *RPC) AddReconnect() {
	if c != nil {
		c.reconnects.Add(1)
	}
}

// AddReset counts one connection torn down mid-RPC (peer or injected).
func (c *RPC) AddReset() {
	if c != nil {
		c.resets.Add(1)
	}
}

// AddDupSend counts one request frame deliberately delivered twice by
// the fault injector.
func (c *RPC) AddDupSend() {
	if c != nil {
		c.dupSends.Add(1)
	}
}

// AddPartitioned counts one RPC failed fast inside a partition window.
func (c *RPC) AddPartitioned() {
	if c != nil {
		c.partitioned.Add(1)
	}
}

// AddDeadlineExceeded counts one RPC attempt that failed because an op
// deadline or retry wall cap expired — the overload signature, as opposed
// to a torn connection (AddPeerReset).
func (c *RPC) AddDeadlineExceeded() {
	if c != nil {
		c.deadlineExceeded.Add(1)
	}
}

// AddPeerReset counts one RPC attempt that failed because the peer reset
// or closed the connection mid-exchange (server kill, restart, injected
// reset) — the fault signature, as opposed to an expired deadline.
func (c *RPC) AddPeerReset() {
	if c != nil {
		c.peerResets.Add(1)
	}
}

// AddFailover counts one completed shard failover (standby promoted and
// routing swapped).
func (c *RPC) AddFailover() {
	if c != nil {
		c.failovers.Add(1)
	}
}

// AddStaleRetry counts one statusRetry answer (standby not yet promoted,
// or a stale shard epoch) that forced an epoch resync and retry.
func (c *RPC) AddStaleRetry() {
	if c != nil {
		c.staleRetries.Add(1)
	}
}

// AddPlacementRetry counts one request refused under a superseded
// placement generation (the block moved; the client re-resolved its
// route from a newer map and retried).
func (c *RPC) AddPlacementRetry() {
	if c != nil {
		c.placementRetries.Add(1)
	}
}

// AddViewRefresh counts one successful fleet-view fetch.
func (c *RPC) AddViewRefresh() {
	if c != nil {
		c.viewRefreshes.Add(1)
	}
}

// AddBlocksMigrated counts blocks observed moving to a new owner (from
// the driver's perspective: placement-generation bumps it routed across).
func (c *RPC) AddBlocksMigrated(n int64) {
	if c != nil && n > 0 {
		c.blocksMigrated.Add(n)
	}
}

// RPCSnapshot is the JSON-facing view of the transport counters.
type RPCSnapshot struct {
	LatencyNS    HistSnapshot `json:"latency_ns"`
	Calls        int64        `json:"calls"`
	Retries      int64        `json:"retries,omitempty"`
	Failures     int64        `json:"failures,omitempty"`
	Dials        int64        `json:"dials"`
	Reconnects   int64        `json:"reconnects,omitempty"`
	Resets       int64        `json:"resets,omitempty"`
	DupSends     int64        `json:"dup_sends,omitempty"`
	Partitioned  int64        `json:"partitioned,omitempty"`
	Failovers    int64        `json:"failovers,omitempty"`
	StaleRetries int64        `json:"stale_retries,omitempty"`
	// Elastic-fleet counters: requests bounced by a superseded placement
	// map, fleet-view fetches, and blocks seen migrating to new owners.
	PlacementRetries int64 `json:"placement_retries,omitempty"`
	ViewRefreshes    int64 `json:"view_refreshes,omitempty"`
	BlocksMigrated   int64 `json:"blocks_migrated,omitempty"`
	// Failure-cause split: expired deadlines (overload) vs peer-torn
	// connections (faults/restarts).
	DeadlineExceeded int64 `json:"deadline_exceeded,omitempty"`
	PeerResets       int64 `json:"peer_resets,omitempty"`
}

// Snapshot captures the current transport counters.
func (c *RPC) Snapshot() RPCSnapshot {
	if c == nil {
		return RPCSnapshot{}
	}
	return RPCSnapshot{
		LatencyNS:        c.latency.snapshot(),
		Calls:            c.calls.Load(),
		Retries:          c.retries.Load(),
		Failures:         c.failures.Load(),
		Dials:            c.dials.Load(),
		Reconnects:       c.reconnects.Load(),
		Resets:           c.resets.Load(),
		DupSends:         c.dupSends.Load(),
		Partitioned:      c.partitioned.Load(),
		Failovers:        c.failovers.Load(),
		StaleRetries:     c.staleRetries.Load(),
		PlacementRetries: c.placementRetries.Load(),
		ViewRefreshes:    c.viewRefreshes.Load(),
		BlocksMigrated:   c.blocksMigrated.Load(),
		DeadlineExceeded: c.deadlineExceeded.Load(),
		PeerResets:       c.peerResets.Load(),
	}
}

// MarshalJSON serializes the current snapshot.
func (c *RPC) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Snapshot())
}

// Cache is the counter set of the stored-ERI tier (integrals.ERIStore).
// Like RPC it is recorded with direct atomics rather than commit-time
// merging: a replay/recompute decision happened whether or not the task
// it served ever commits, and double counts from fenced re-executions
// are accounting noise, not a correctness hazard (the store itself stays
// exactly-once via first-writer-wins commits). All methods are
// nil-receiver safe.
type Cache struct {
	taskHits, taskMisses             atomic.Int64
	quartetsStored, quartetsReplayed atomic.Int64
	bytesStored                      atomic.Int64
	spills, spillBytes               atomic.Int64
	spillFetches, spillMisses        atomic.Int64
	dropped                          atomic.Int64
}

// AddTaskHit counts one task served from the store (replayed).
func (c *Cache) AddTaskHit() {
	if c != nil {
		c.taskHits.Add(1)
	}
}

// AddTaskMiss counts one task the store could not serve (no entry yet,
// entry dropped over budget, or spill fetch failed) — the caller
// recomputes it through the kernel layer.
func (c *Cache) AddTaskMiss() {
	if c != nil {
		c.taskMisses.Add(1)
	}
}

// AddStored counts one committed task entry: quartets and value bytes
// retained (in memory or on a spill shard).
func (c *Cache) AddStored(quartets, bytes int64) {
	if c != nil {
		c.quartetsStored.Add(quartets)
		c.bytesStored.Add(bytes)
	}
}

// AddReplayed counts quartets applied from stored batches.
func (c *Cache) AddReplayed(quartets int64) {
	if c != nil {
		c.quartetsReplayed.Add(quartets)
	}
}

// AddSpill counts one task's values pushed to the spill backend.
func (c *Cache) AddSpill(bytes int64) {
	if c != nil {
		c.spills.Add(1)
		c.spillBytes.Add(bytes)
	}
}

// AddSpillFetch counts one spilled batch fetched back for replay.
func (c *Cache) AddSpillFetch() {
	if c != nil {
		c.spillFetches.Add(1)
	}
}

// AddSpillMiss counts one spilled batch the backend no longer had (shard
// restarted, blob evicted) — the task falls back to recompute.
func (c *Cache) AddSpillMiss() {
	if c != nil {
		c.spillMisses.Add(1)
	}
}

// AddDropped counts one over-budget task entry dropped instead of
// spilled (no spill backend, or the spill write failed).
func (c *Cache) AddDropped() {
	if c != nil {
		c.dropped.Add(1)
	}
}

// CacheSnapshot is the JSON-facing view of the stored-ERI counters.
type CacheSnapshot struct {
	TaskHits         int64 `json:"task_hits"`
	TaskMisses       int64 `json:"task_misses"`
	QuartetsStored   int64 `json:"quartets_stored"`
	QuartetsReplayed int64 `json:"quartets_replayed"`
	BytesStored      int64 `json:"bytes_stored"`
	Spills           int64 `json:"spills,omitempty"`
	SpillBytes       int64 `json:"spill_bytes,omitempty"`
	SpillFetches     int64 `json:"spill_fetches,omitempty"`
	SpillMisses      int64 `json:"spill_misses,omitempty"`
	Dropped          int64 `json:"dropped,omitempty"`
}

// HitRate returns replayed tasks over replay attempts (0 when none).
func (s CacheSnapshot) HitRate() float64 {
	if s.TaskHits+s.TaskMisses == 0 {
		return 0
	}
	return float64(s.TaskHits) / float64(s.TaskHits+s.TaskMisses)
}

// Sub returns the per-field difference s - b, for per-iteration deltas
// of a monotonically growing counter set.
func (s CacheSnapshot) Sub(b CacheSnapshot) CacheSnapshot {
	return CacheSnapshot{
		TaskHits:         s.TaskHits - b.TaskHits,
		TaskMisses:       s.TaskMisses - b.TaskMisses,
		QuartetsStored:   s.QuartetsStored - b.QuartetsStored,
		QuartetsReplayed: s.QuartetsReplayed - b.QuartetsReplayed,
		BytesStored:      s.BytesStored - b.BytesStored,
		Spills:           s.Spills - b.Spills,
		SpillBytes:       s.SpillBytes - b.SpillBytes,
		SpillFetches:     s.SpillFetches - b.SpillFetches,
		SpillMisses:      s.SpillMisses - b.SpillMisses,
		Dropped:          s.Dropped - b.Dropped,
	}
}

// Snapshot captures the current stored-ERI counters.
func (c *Cache) Snapshot() CacheSnapshot {
	if c == nil {
		return CacheSnapshot{}
	}
	return CacheSnapshot{
		TaskHits:         c.taskHits.Load(),
		TaskMisses:       c.taskMisses.Load(),
		QuartetsStored:   c.quartetsStored.Load(),
		QuartetsReplayed: c.quartetsReplayed.Load(),
		BytesStored:      c.bytesStored.Load(),
		Spills:           c.spills.Load(),
		SpillBytes:       c.spillBytes.Load(),
		SpillFetches:     c.spillFetches.Load(),
		SpillMisses:      c.spillMisses.Load(),
		Dropped:          c.dropped.Load(),
	}
}

// MarshalJSON serializes the current snapshot.
func (c *Cache) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Snapshot())
}
