package chem

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if v.Add(w) != (Vec3{5, 7, 9}) {
		t.Fatal("Add")
	}
	if v.Sub(w) != (Vec3{-3, -3, -3}) {
		t.Fatal("Sub")
	}
	if v.Dot(w) != 32 {
		t.Fatal("Dot")
	}
	if v.Cross(w) != (Vec3{-3, 6, -3}) {
		t.Fatal("Cross")
	}
	if math.Abs(v.Norm()-math.Sqrt(14)) > 1e-15 {
		t.Fatal("Norm")
	}
	if math.Abs(v.Unit().Norm()-1) > 1e-15 {
		t.Fatal("Unit")
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{math.Mod(ax, 10), math.Mod(ay, 10), math.Mod(az, 10)}
		b := Vec3{math.Mod(bx, 10), math.Mod(by, 10), math.Mod(bz, 10)}
		c := a.Cross(b)
		scale := 1 + a.Norm()*b.Norm()
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPerpendicular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if v.Norm() < 1e-6 {
			continue
		}
		p := perpendicular(v)
		if math.Abs(p.Norm()-1) > 1e-12 {
			t.Fatal("perpendicular not unit")
		}
		if math.Abs(p.Dot(v))/v.Norm() > 1e-12 {
			t.Fatal("perpendicular not orthogonal")
		}
	}
}

func TestRotateAboutPreservesNormAndAxis(t *testing.T) {
	axis := Vec3{0, 0, 1}
	v := Vec3{1, 0, 0}
	r := rotateAbout(v, axis, math.Pi/2)
	if r.Sub(Vec3{0, 1, 0}).Norm() > 1e-14 {
		t.Fatalf("rotateAbout 90deg about z: got %+v", r)
	}
	if math.Abs(rotateAbout(axis, axis, 1.234).Sub(axis).Norm()) > 1e-14 {
		t.Fatal("rotation moved the axis")
	}
}

func TestMethane(t *testing.T) {
	m := Methane()
	if m.Formula() != "CH4" {
		t.Fatalf("formula = %s", m.Formula())
	}
	if m.NumElectrons() != 10 {
		t.Fatalf("electrons = %d", m.NumElectrons())
	}
	// All C-H distances equal to chBond.
	want := chBondA * BohrPerAngstrom
	for _, a := range m.Atoms[1:] {
		if math.Abs(a.Pos.Dist(m.Atoms[0].Pos)-want) > 1e-10 {
			t.Fatal("C-H bond length wrong")
		}
	}
	// H-C-H angles are tetrahedral.
	for i := 1; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			cos := m.Atoms[i].Pos.Unit().Dot(m.Atoms[j].Pos.Unit())
			if math.Abs(cos-(-1.0/3.0)) > 1e-10 {
				t.Fatalf("H-C-H cos angle = %v, want -1/3", cos)
			}
		}
	}
}

func TestAlkaneFormulas(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 25, 100, 144} {
		m := Alkane(n)
		carbons, hydrogens := 0, 0
		for _, a := range m.Atoms {
			switch a.Z {
			case ZCarbon:
				carbons++
			case ZHydrogen:
				hydrogens++
			}
		}
		if carbons != n || hydrogens != 2*n+2 {
			t.Fatalf("Alkane(%d) = C%dH%d, want C%dH%d", n, carbons, hydrogens, n, 2*n+2)
		}
	}
}

func TestAlkaneGeometrySane(t *testing.T) {
	m := Alkane(10)
	if m.Formula() != "C10H22" {
		t.Fatalf("formula = %s", m.Formula())
	}
	// No two atoms closer than ~0.9 Angstrom.
	if m.MinInterAtomicDistance() < 0.9*BohrPerAngstrom {
		t.Fatalf("atoms too close: %v Bohr", m.MinInterAtomicDistance())
	}
	// Backbone C-C distances are the bond length.
	want := ccSingleBondA * BohrPerAngstrom
	for i := 0; i+1 < 10; i++ {
		d := m.Atoms[i].Pos.Dist(m.Atoms[i+1].Pos)
		if math.Abs(d-want) > 1e-9 {
			t.Fatalf("C%d-C%d distance %v, want %v", i, i+1, d, want)
		}
	}
	// Chain extends along x (1D structure).
	min, max := m.BoundingBox()
	if (max.X-min.X) < 5*(max.Z-min.Z) || (max.X-min.X) < 5*(max.Y-min.Y) {
		t.Fatal("alkane is not chain-like along x")
	}
}

func TestGrapheneFlakeFormulas(t *testing.T) {
	for k := 1; k <= 5; k++ {
		m := GrapheneFlake(k)
		carbons, hydrogens := 0, 0
		for _, a := range m.Atoms {
			switch a.Z {
			case ZCarbon:
				carbons++
			case ZHydrogen:
				hydrogens++
			}
		}
		if carbons != 6*k*k || hydrogens != 6*k {
			t.Fatalf("GrapheneFlake(%d) = C%dH%d, want C%dH%d",
				k, carbons, hydrogens, 6*k*k, 6*k)
		}
	}
}

func TestGrapheneFlakePlanarAndSane(t *testing.T) {
	m := GrapheneFlake(4) // C96H24
	if m.Formula() != "C96H24" {
		t.Fatalf("formula = %s", m.Formula())
	}
	for _, a := range m.Atoms {
		if math.Abs(a.Pos.Z) > 1e-12 {
			t.Fatal("flake not planar")
		}
	}
	if m.MinInterAtomicDistance() < 1.0*BohrPerAngstrom {
		t.Fatalf("atoms too close: %v Bohr", m.MinInterAtomicDistance())
	}
	// Every carbon has exactly 3 neighbors (C or H) at bonding distance.
	bondMax := 1.6 * BohrPerAngstrom
	for i, a := range m.Atoms {
		if a.Z != ZCarbon {
			continue
		}
		deg := 0
		for j, b := range m.Atoms {
			if i != j && a.Pos.Dist(b.Pos) < bondMax {
				deg++
			}
		}
		if deg != 3 {
			t.Fatalf("carbon %d has degree %d, want 3", i, deg)
		}
	}
}

func TestBenzeneIsHexagon(t *testing.T) {
	m := Benzene()
	if m.Formula() != "C6H6" {
		t.Fatalf("formula = %s", m.Formula())
	}
	// All carbons at equal distance from centroid.
	var c Vec3
	for _, a := range m.Atoms[:6] {
		c = c.Add(a.Pos)
	}
	c = c.Scale(1.0 / 6)
	r0 := m.Atoms[0].Pos.Dist(c)
	for _, a := range m.Atoms[:6] {
		if math.Abs(a.Pos.Dist(c)-r0) > 1e-9 {
			t.Fatal("benzene carbons not on a circle")
		}
	}
}

// Small graphene ribbons are familiar polycyclic aromatics.
func TestGrapheneRibbonKnownPAHs(t *testing.T) {
	cases := []struct {
		nx, ny  int
		formula string
	}{
		{1, 1, "C6H6"},    // benzene
		{2, 1, "C10H8"},   // naphthalene
		{3, 1, "C14H10"},  // anthracene
		{2, 2, "C16H10"},  // pyrene
		{5, 1, "C22H14"},  // pentacene
		{10, 2, "C64H26"}, // a long 2-wide ribbon: 2*nx*ny + 2(nx+ny) carbons
	}
	for _, c := range cases {
		m := GrapheneRibbon(c.nx, c.ny)
		if m.Formula() != c.formula {
			t.Fatalf("ribbon %dx%d = %s, want %s", c.nx, c.ny, m.Formula(), c.formula)
		}
		for _, a := range m.Atoms {
			if math.Abs(a.Pos.Z) > 1e-12 {
				t.Fatal("ribbon not planar")
			}
		}
		if m.MinInterAtomicDistance() < 1.0*BohrPerAngstrom {
			t.Fatal("ribbon atoms too close")
		}
	}
}

func TestPaperMolecules(t *testing.T) {
	cases := map[string]struct{ atoms, electrons int }{
		"C24H12":   {36, 156},
		"C96H24":   {120, 600},
		"C150H30":  {180, 930},
		"C10H22":   {32, 82},
		"C100H202": {302, 802},
		"C144H290": {434, 1154},
	}
	for formula, want := range cases {
		m, err := PaperMolecule(formula)
		if err != nil {
			t.Fatalf("%s: %v", formula, err)
		}
		if m.Formula() != formula {
			t.Fatalf("formula %s != %s", m.Formula(), formula)
		}
		if m.NumAtoms() != want.atoms {
			t.Fatalf("%s atoms = %d, want %d", formula, m.NumAtoms(), want.atoms)
		}
		if m.NumElectrons() != want.electrons {
			t.Fatalf("%s electrons = %d, want %d", formula, m.NumElectrons(), want.electrons)
		}
		if m.NumElectrons()%2 != 0 {
			t.Fatalf("%s not closed-shell", formula)
		}
	}
	if _, err := PaperMolecule("XYZ99"); err == nil {
		t.Fatal("expected error for unknown molecule")
	}
}

func TestNuclearRepulsionH2(t *testing.T) {
	m := Hydrogen2(0.741)
	want := 1.0 / (0.741 * BohrPerAngstrom)
	if math.Abs(m.NuclearRepulsion()-want) > 1e-12 {
		t.Fatalf("E_nn = %v, want %v", m.NuclearRepulsion(), want)
	}
}

func TestNuclearRepulsionTranslationInvariant(t *testing.T) {
	m := Methane()
	e0 := m.NuclearRepulsion()
	m.Translate(Vec3{3, -2, 7})
	if math.Abs(m.NuclearRepulsion()-e0) > 1e-10 {
		t.Fatal("E_nn not translation invariant")
	}
}

func TestXYZFormat(t *testing.T) {
	m := Hydrogen2(0.741)
	s := m.XYZ()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("xyz has %d lines", len(lines))
	}
	if lines[0] != "2" {
		t.Fatalf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "H") || !strings.HasPrefix(lines[3], "H") {
		t.Fatal("atom lines malformed")
	}
}

func TestBoundingBox(t *testing.T) {
	m := &Molecule{Atoms: []Atom{
		{Z: 1, Pos: Vec3{-1, 0, 2}},
		{Z: 1, Pos: Vec3{3, -4, 1}},
	}}
	min, max := m.BoundingBox()
	if min != (Vec3{-1, -4, 1}) || max != (Vec3{3, 0, 2}) {
		t.Fatalf("bbox = %+v %+v", min, max)
	}
}

func TestSymbol(t *testing.T) {
	if Symbol(1) != "H" || Symbol(6) != "C" {
		t.Fatal("Symbol")
	}
	if Symbol(8) != "Z8" {
		t.Fatalf("Symbol(8) = %s", Symbol(8))
	}
}

func TestHydrogenDirectionsTetrahedral(t *testing.T) {
	// CH2 case: two neighbors at the backbone angle; the two H directions
	// must be unit, symmetric, and at ~tetrahedral angle to each other.
	c := Vec3{}
	n1 := Vec3{1, 0, 0.3}.Unit()
	n2 := Vec3{-1, 0, 0.3}.Unit()
	dirs := hydrogenDirections(c, []Vec3{n1, n2})
	if len(dirs) != 2 {
		t.Fatalf("CH2 got %d dirs", len(dirs))
	}
	cos := dirs[0].Dot(dirs[1])
	wantCos := math.Cos(tetAngleDeg * math.Pi / 180)
	if math.Abs(cos-wantCos) > 1e-9 {
		t.Fatalf("H-C-H cos = %v, want %v", cos, wantCos)
	}
	// CH3 case: three dirs, mutually equal angles.
	dirs3 := hydrogenDirections(c, []Vec3{n1})
	if len(dirs3) != 3 {
		t.Fatalf("CH3 got %d dirs", len(dirs3))
	}
	for i := 0; i < 3; i++ {
		if math.Abs(dirs3[i].Norm()-1) > 1e-12 {
			t.Fatal("CH3 dir not unit")
		}
		// angle to C-C bond is tetrahedral
		if math.Abs(dirs3[i].Dot(n1)-wantCos) > 1e-9 {
			t.Fatal("CH3 C-H not at tetrahedral angle to C-C")
		}
	}
}
