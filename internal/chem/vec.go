// Package chem provides molecular geometry: 3-vectors, elements, the
// Molecule type, and generators for the test systems used in the paper's
// evaluation — hexagonal graphene flakes C(6k^2)H(6k) (C24H12, C96H24,
// C150H30, ...) and all-anti linear alkanes CnH(2n+2) (C10H22, C100H202,
// C144H290, ...).
//
// All coordinates are stored in atomic units (Bohr); generator inputs use
// Angstrom bond lengths, converted internally.
package chem

import "math"

// BohrPerAngstrom converts Angstrom to Bohr (CODATA).
const BohrPerAngstrom = 1.8897259886

// Vec3 is a point or direction in R^3.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns a*v.
func (v Vec3) Scale(a float64) Vec3 { return Vec3{a * v.X, a * v.Y, a * v.Z} }

// Dot returns the inner product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|^2.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Unit returns v/|v|; it panics on the zero vector.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		panic("chem: Unit of zero vector")
	}
	return v.Scale(1 / n)
}

// Dist returns |v - w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// perpendicular returns an arbitrary unit vector orthogonal to v.
func perpendicular(v Vec3) Vec3 {
	u := v.Unit()
	// Cross with the axis least aligned with v.
	ref := Vec3{1, 0, 0}
	if math.Abs(u.X) > math.Abs(u.Y) {
		ref = Vec3{0, 1, 0}
	}
	return u.Cross(ref).Unit()
}

// rotateAbout rotates v by angle theta about the unit axis k (Rodrigues).
func rotateAbout(v, k Vec3, theta float64) Vec3 {
	c, s := math.Cos(theta), math.Sin(theta)
	return v.Scale(c).Add(k.Cross(v).Scale(s)).Add(k.Scale(k.Dot(v) * (1 - c)))
}
