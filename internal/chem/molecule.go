package chem

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Atomic numbers of the elements this reproduction needs (hydrocarbons).
const (
	ZHydrogen = 1
	ZCarbon   = 6
)

// Symbol returns the element symbol for atomic number z.
func Symbol(z int) string {
	switch z {
	case ZHydrogen:
		return "H"
	case ZCarbon:
		return "C"
	default:
		return fmt.Sprintf("Z%d", z)
	}
}

// Atom is a nucleus: atomic number and position (Bohr).
type Atom struct {
	Z   int
	Pos Vec3
}

// Molecule is an ordered list of atoms. Atom order matters: basis shells
// are laid out in atom order, and the paper's reordering scheme permutes
// shells (Sec. III-D).
type Molecule struct {
	Name  string
	Atoms []Atom
}

// NumAtoms returns the number of atoms.
func (m *Molecule) NumAtoms() int { return len(m.Atoms) }

// NumElectrons returns the total electron count of the neutral molecule.
func (m *Molecule) NumElectrons() int {
	n := 0
	for _, a := range m.Atoms {
		n += a.Z
	}
	return n
}

// Formula returns the Hill-convention molecular formula, e.g. "C96H24".
func (m *Molecule) Formula() string {
	counts := map[int]int{}
	for _, a := range m.Atoms {
		counts[a.Z]++
	}
	var b strings.Builder
	write := func(z int) {
		if c := counts[z]; c > 0 {
			b.WriteString(Symbol(z))
			if c > 1 {
				fmt.Fprintf(&b, "%d", c)
			}
			delete(counts, z)
		}
	}
	write(ZCarbon)
	write(ZHydrogen)
	rest := make([]int, 0, len(counts))
	for z := range counts {
		rest = append(rest, z)
	}
	sort.Ints(rest)
	for _, z := range rest {
		write(z)
	}
	return b.String()
}

// NuclearRepulsion returns the nuclear-nuclear repulsion energy in Hartree.
func (m *Molecule) NuclearRepulsion() float64 {
	var e float64
	for i := range m.Atoms {
		for j := i + 1; j < len(m.Atoms); j++ {
			r := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos)
			e += float64(m.Atoms[i].Z) * float64(m.Atoms[j].Z) / r
		}
	}
	return e
}

// Translate shifts every atom by d (Bohr) and returns m.
func (m *Molecule) Translate(d Vec3) *Molecule {
	for i := range m.Atoms {
		m.Atoms[i].Pos = m.Atoms[i].Pos.Add(d)
	}
	return m
}

// BoundingBox returns the min and max corners of the axis-aligned box
// containing all atoms.
func (m *Molecule) BoundingBox() (min, max Vec3) {
	if len(m.Atoms) == 0 {
		return Vec3{}, Vec3{}
	}
	min, max = m.Atoms[0].Pos, m.Atoms[0].Pos
	for _, a := range m.Atoms[1:] {
		if a.Pos.X < min.X {
			min.X = a.Pos.X
		}
		if a.Pos.Y < min.Y {
			min.Y = a.Pos.Y
		}
		if a.Pos.Z < min.Z {
			min.Z = a.Pos.Z
		}
		if a.Pos.X > max.X {
			max.X = a.Pos.X
		}
		if a.Pos.Y > max.Y {
			max.Y = a.Pos.Y
		}
		if a.Pos.Z > max.Z {
			max.Z = a.Pos.Z
		}
	}
	return min, max
}

// XYZ renders the molecule in XMol .xyz format with coordinates in Angstrom.
func (m *Molecule) XYZ() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d\n%s\n", len(m.Atoms), m.Name)
	inv := 1 / BohrPerAngstrom
	for _, a := range m.Atoms {
		fmt.Fprintf(&b, "%-2s %14.8f %14.8f %14.8f\n",
			Symbol(a.Z), a.Pos.X*inv, a.Pos.Y*inv, a.Pos.Z*inv)
	}
	return b.String()
}

// MinInterAtomicDistance returns the smallest pairwise distance (Bohr); a
// geometry sanity check used by tests. Returns +Inf for <2 atoms.
func (m *Molecule) MinInterAtomicDistance() float64 {
	best := math.Inf(1)
	for i := range m.Atoms {
		for j := i + 1; j < len(m.Atoms); j++ {
			if d := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos); d < best {
				best = d
			}
		}
	}
	return best
}
