package chem

import (
	"strconv"
	"strings"
)

// ParseSpec builds a molecule from the command-line spec grammar shared
// by every driver in this repository: "alkane:N" (the paper's linear
// alkane series), "flake:K" (hexagonal graphene flakes), or a named
// formula from the paper's test set (CH4, C6H6, ...).
func ParseSpec(spec string) (*Molecule, error) {
	switch {
	case strings.HasPrefix(spec, "alkane:"):
		n, err := strconv.Atoi(spec[len("alkane:"):])
		if err != nil {
			return nil, err
		}
		return Alkane(n), nil
	case strings.HasPrefix(spec, "flake:"):
		k, err := strconv.Atoi(spec[len("flake:"):])
		if err != nil {
			return nil, err
		}
		return GrapheneFlake(k), nil
	default:
		return PaperMolecule(spec)
	}
}
