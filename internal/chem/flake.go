package chem

import (
	"fmt"
	"math"
	"sort"
)

// GrapheneFlake generates the hexagonally symmetric graphene flake of
// order k >= 1: formula C(6k^2)H(6k). The family contains the paper's "2D
// planar" test molecules:
//
//	k=1: C6H6 (benzene)     k=2: C24H12 (coronene)
//	k=3: C54H18             k=4: C96H24
//	k=5: C150H30
//
// The flake lies in the z=0 plane. Carbon atoms come first (sorted by
// position for determinism), then edge hydrogens.
func GrapheneFlake(k int) *Molecule {
	if k < 1 {
		panic("chem: GrapheneFlake requires k >= 1")
	}
	// Ring centers on a triangular lattice: axial coordinates (q, r) with
	// max(|q|, |r|, |q+r|) <= k-1 gives the hexagon of 3k^2-3k+1 rings.
	var rings [][2]int
	for q := -(k - 1); q <= k-1; q++ {
		for r := -(k - 1); r <= k-1; r++ {
			if abs(q+r) <= k-1 {
				rings = append(rings, [2]int{q, r})
			}
		}
	}
	return honeycomb(rings, fmt.Sprintf("C%dH%d graphene flake (k=%d)", 6*k*k, 6*k, k))
}

// GrapheneRibbon generates a parallelogram-shaped polycyclic aromatic
// patch of nx x ny fused hexagonal rings — a finite graphene nanoribbon.
// Small instances are familiar molecules: 1x1 benzene, 2x1 naphthalene,
// 3x1 anthracene, 2x2 pyrene.
func GrapheneRibbon(nx, ny int) *Molecule {
	if nx < 1 || ny < 1 {
		panic("chem: GrapheneRibbon requires nx, ny >= 1")
	}
	var rings [][2]int
	for q := 0; q < nx; q++ {
		for r := 0; r < ny; r++ {
			rings = append(rings, [2]int{q, r})
		}
	}
	return honeycomb(rings, fmt.Sprintf("%dx%d graphene ribbon", nx, ny))
}

// honeycomb builds the union of hexagonal rings centered at the given
// axial lattice coordinates, hydrogen-terminating every edge carbon
// (degree-2 vertices of the honeycomb).
func honeycomb(rings [][2]int, name string) *Molecule {
	cc := ccAromaticA * BohrPerAngstrom
	ch := chAromaticA * BohrPerAngstrom
	ringDist := cc * math.Sqrt(3) // distance between adjacent ring centers

	type key struct{ x, y int64 }
	seen := map[key]Vec3{}
	quantize := func(p Vec3) key {
		const q = 1e6
		return key{int64(math.Round(p.X * q)), int64(math.Round(p.Y * q))}
	}
	for _, qr := range rings {
		center := Vec3{
			X: ringDist * (float64(qr[0]) + float64(qr[1])/2),
			Y: ringDist * math.Sqrt(3) / 2 * float64(qr[1]),
		}
		// Six vertices at 30, 90, ..., 330 degrees, circumradius cc.
		for v := 0; v < 6; v++ {
			ang := math.Pi/6 + float64(v)*math.Pi/3
			p := center.Add(Vec3{X: cc * math.Cos(ang), Y: cc * math.Sin(ang)})
			seen[quantize(p)] = p
		}
	}
	carbons := make([]Vec3, 0, len(seen))
	for _, p := range seen {
		carbons = append(carbons, p)
	}
	sort.Slice(carbons, func(i, j int) bool {
		if carbons[i].Y != carbons[j].Y {
			return carbons[i].Y < carbons[j].Y
		}
		return carbons[i].X < carbons[j].X
	})

	mol := &Molecule{Name: name}
	for _, c := range carbons {
		mol.Atoms = append(mol.Atoms, Atom{Z: ZCarbon, Pos: c})
	}
	// Hydrogens terminate carbons with fewer than 3 carbon neighbors.
	bondTol := 1.1 * cc
	for i, c := range carbons {
		var nbrSum Vec3
		deg := 0
		for j, c2 := range carbons {
			if i == j {
				continue
			}
			if c.Dist(c2) < bondTol {
				deg++
				nbrSum = nbrSum.Add(c2.Sub(c).Unit())
			}
		}
		if deg == 2 {
			dir := nbrSum.Scale(-1).Unit()
			mol.Atoms = append(mol.Atoms, Atom{Z: ZHydrogen, Pos: c.Add(dir.Scale(ch))})
		} else if deg < 2 {
			panic(fmt.Sprintf("chem: honeycomb carbon %d has degree %d", i, deg))
		}
	}
	return mol
}

// Benzene returns C6H6 (GrapheneFlake order 1).
func Benzene() *Molecule { return GrapheneFlake(1) }

// Coronene returns C24H12 (GrapheneFlake order 2), the graphene-family
// molecule of the paper's Table V.
func Coronene() *Molecule { return GrapheneFlake(2) }

// PaperMolecule returns one of the paper's named test systems by formula:
// C96H24, C150H30, C100H202, C144H290, C24H12, C10H22.
func PaperMolecule(formula string) (*Molecule, error) {
	switch formula {
	case "C6H6":
		return GrapheneFlake(1), nil
	case "C24H12":
		return GrapheneFlake(2), nil
	case "C54H18":
		return GrapheneFlake(3), nil
	case "C96H24":
		return GrapheneFlake(4), nil
	case "C150H30":
		return GrapheneFlake(5), nil
	case "C10H22":
		return Alkane(10), nil
	case "C100H202":
		return Alkane(100), nil
	case "C144H290":
		return Alkane(144), nil
	case "CH4":
		return Methane(), nil
	case "H2":
		return Hydrogen2(0), nil
	default:
		return nil, fmt.Errorf("chem: unknown paper molecule %q", formula)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
