package chem

import (
	"fmt"
	"math"
)

// Geometry constants (Angstrom / degrees) for generated hydrocarbons.
const (
	ccSingleBondA = 1.526  // sp3 C-C
	chBondA       = 1.090  // C-H
	cccAngleDeg   = 111.0  // backbone C-C-C angle
	tetAngleDeg   = 109.47 // ideal tetrahedral angle
	ccAromaticA   = 1.421  // graphene C-C
	chAromaticA   = 1.080  // aromatic C-H
)

// Alkane generates the all-anti (zig-zag) linear alkane CnH(2n+2) for
// n >= 1. The backbone lies in the xz-plane extending along +x; these are
// the paper's "1D chain-like" test molecules (C10H22, C100H202, C144H290).
func Alkane(n int) *Molecule {
	if n < 1 {
		panic("chem: Alkane requires n >= 1")
	}
	cc := ccSingleBondA * BohrPerAngstrom
	ch := chBondA * BohrPerAngstrom
	half := cccAngleDeg * math.Pi / 180 / 2
	dx := cc * math.Sin(half)
	dz := cc * math.Cos(half)

	mol := &Molecule{Name: fmt.Sprintf("C%dH%d linear alkane", n, 2*n+2)}
	carbons := make([]Vec3, n)
	for i := 0; i < n; i++ {
		z := 0.0
		if i%2 == 1 {
			z = dz
		}
		carbons[i] = Vec3{X: float64(i) * dx, Z: z}
	}
	// Atom ordering: carbons first in chain order, then hydrogens in the
	// order of their parent carbon. Shell reordering (Sec. III-D) will
	// interleave them spatially later; the generator keeps a simple,
	// deterministic order.
	for _, c := range carbons {
		mol.Atoms = append(mol.Atoms, Atom{Z: ZCarbon, Pos: c})
	}
	for i, c := range carbons {
		var neighbors []Vec3
		if i > 0 {
			neighbors = append(neighbors, carbons[i-1])
		}
		if i < n-1 {
			neighbors = append(neighbors, carbons[i+1])
		}
		for _, h := range hydrogenDirections(c, neighbors) {
			mol.Atoms = append(mol.Atoms, Atom{Z: ZHydrogen, Pos: c.Add(h.Scale(ch))})
		}
	}
	return mol
}

// Methane returns CH4 with ideal tetrahedral geometry.
func Methane() *Molecule {
	mol := &Molecule{Name: "CH4 methane"}
	mol.Atoms = append(mol.Atoms, Atom{Z: ZCarbon, Pos: Vec3{}})
	ch := chBondA * BohrPerAngstrom
	s := 1 / math.Sqrt(3)
	for _, d := range []Vec3{{s, s, s}, {s, -s, -s}, {-s, s, -s}, {-s, -s, s}} {
		mol.Atoms = append(mol.Atoms, Atom{Z: ZHydrogen, Pos: d.Scale(ch)})
	}
	return mol
}

// Hydrogen2 returns the H2 molecule at the given bond length in Angstrom
// (pass 0 for the experimental 0.741 A). Useful for minimal SCF tests.
func Hydrogen2(bondA float64) *Molecule {
	if bondA <= 0 {
		bondA = 0.741
	}
	d := bondA * BohrPerAngstrom
	return &Molecule{
		Name: "H2",
		Atoms: []Atom{
			{Z: ZHydrogen, Pos: Vec3{Z: -d / 2}},
			{Z: ZHydrogen, Pos: Vec3{Z: d / 2}},
		},
	}
}

// hydrogenDirections completes a carbon's coordination to 4 bonds with
// approximately tetrahedral unit vectors, given the positions of its
// existing heavy-atom neighbors.
func hydrogenDirections(c Vec3, neighbors []Vec3) []Vec3 {
	tet := tetAngleDeg * math.Pi / 180
	switch len(neighbors) {
	case 0: // isolated carbon: 4 tetrahedral directions
		s := 1 / math.Sqrt(3)
		return []Vec3{{s, s, s}, {s, -s, -s}, {-s, s, -s}, {-s, -s, s}}
	case 1: // CH3: three H at tetAngle from the single C-C bond
		n := neighbors[0].Sub(c).Unit()
		p := perpendicular(n)
		base := n.Scale(math.Cos(tet)).Add(p.Scale(math.Sin(tet)))
		out := make([]Vec3, 0, 3)
		for k := 0; k < 3; k++ {
			out = append(out, rotateAbout(base, n, float64(k)*2*math.Pi/3).Unit())
		}
		return out
	case 2: // CH2: two H in the plane bisecting the C-C-C angle
		n1 := neighbors[0].Sub(c).Unit()
		n2 := neighbors[1].Sub(c).Unit()
		bisector := n1.Add(n2).Scale(-1).Unit()
		axis := n1.Cross(n2).Unit()
		half := tet / 2
		return []Vec3{
			bisector.Scale(math.Cos(half)).Add(axis.Scale(math.Sin(half))).Unit(),
			bisector.Scale(math.Cos(half)).Sub(axis.Scale(math.Sin(half))).Unit(),
		}
	case 3: // CH: opposite the average of the three neighbors
		sum := Vec3{}
		for _, nb := range neighbors {
			sum = sum.Add(nb.Sub(c).Unit())
		}
		return []Vec3{sum.Scale(-1).Unit()}
	default:
		return nil
	}
}
