package dist

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gtfock/internal/linalg"
)

// ErrDropped reports a one-sided operation that was lost in transport
// before being applied (injected fault); the caller may safely retry.
var ErrDropped = errors.New("dist: one-sided operation dropped")

// ErrFenced reports an accumulate rejected by epoch fencing: the calling
// process incarnation has been declared dead and its contribution must
// be discarded, not applied.
var ErrFenced = errors.New("dist: accumulate fenced (stale epoch)")

// OpKind classifies one-sided operations for the fault hook.
type OpKind int

const (
	OpGet OpKind = iota
	OpPut
	OpAcc
)

// OpHook is consulted by the fallible Try*/fenced operations before they
// apply: delay is slept first, and drop=true fails the operation with
// ErrDropped without applying it. The infallible Get/Put/Acc never
// consult the hook, so fault-oblivious code paths are unaffected.
type OpHook func(proc int, op OpKind) (delay time.Duration, drop bool)

// Fence validates accumulate epochs: AccFenced applies a contribution
// only while ValidEpoch(proc, epoch) holds, discarding late flushes from
// zombie process incarnations.
type Fence interface {
	ValidEpoch(proc int, epoch int64) bool
}

// GlobalArray is a shared-memory stand-in for a Global Arrays 2D
// block-distributed array: goroutine "processes" address it with one-sided
// Get/Put/Acc operations on arbitrary rectangular patches, and every
// operation is accounted against the calling process exactly as the paper
// instruments GA (call counts and transfer volumes, Tables VI/VII; volumes
// include local transfers, matching the paper's measurement note in
// Sec. IV-C).
//
// Concurrency contract: Acc and Put from concurrent processes are safe
// (per-owner-block locking). Get is unsynchronized and must be separated
// from writes by a barrier, which is how the Fock builders use it
// (prefetch phase reads D; accumulate phase writes F).
type GlobalArray struct {
	Grid  *Grid2D
	data  []float64
	locks []sync.Mutex // one per owner block
	stats *RunStats
	hook  OpHook
	fence Fence
}

// SetOpHook installs the fault hook consulted by the fallible
// operations (TryGet/TryPut/TryAcc/AccFenced).
func (g *GlobalArray) SetOpHook(h OpHook) { g.hook = h }

// SetFence installs the epoch authority consulted by AccFenced.
func (g *GlobalArray) SetFence(f Fence) { g.fence = f }

// NewGlobalArray creates a zeroed global array over grid, accounting into
// stats (which must have grid.NumProcs() entries).
func NewGlobalArray(grid *Grid2D, stats *RunStats) *GlobalArray {
	return &GlobalArray{
		Grid:  grid,
		data:  make([]float64, grid.Rows*grid.Cols),
		locks: make([]sync.Mutex, grid.NumProcs()),
		stats: stats,
	}
}

// charge records one one-sided call touching the given patches.
func (g *GlobalArray) charge(proc int, r0, r1, c0, c1 int) {
	st := &g.stats.Per[proc]
	st.Calls++
	elems := int64(r1-r0) * int64(c1-c0)
	st.Bytes += 8 * elems
	for _, p := range g.Grid.Patches(r0, r1, c0, c1) {
		if p.Proc != proc {
			st.RemoteBytes += 8 * int64(p.Elems())
		}
	}
}

// Get copies the patch [r0,r1) x [c0,c1) into dst with leading dimension
// ld (dst row stride). One GA call.
func (g *GlobalArray) Get(proc, r0, r1, c0, c1 int, dst []float64, ld int) {
	g.charge(proc, r0, r1, c0, c1)
	w := c1 - c0
	for r := r0; r < r1; r++ {
		copy(dst[(r-r0)*ld:(r-r0)*ld+w], g.data[r*g.Grid.Cols+c0:r*g.Grid.Cols+c1])
	}
}

// Put stores src (leading dimension ld) into the patch. One GA call.
func (g *GlobalArray) Put(proc, r0, r1, c0, c1 int, src []float64, ld int) {
	g.charge(proc, r0, r1, c0, c1)
	for _, p := range g.Grid.Patches(r0, r1, c0, c1) {
		g.locks[p.Proc].Lock()
		for r := p.R0; r < p.R1; r++ {
			copy(g.data[r*g.Grid.Cols+p.C0:r*g.Grid.Cols+p.C1],
				src[(r-r0)*ld+(p.C0-c0):(r-r0)*ld+(p.C1-c0)])
		}
		g.locks[p.Proc].Unlock()
	}
}

// Acc atomically accumulates alpha*src into the patch. One GA call.
func (g *GlobalArray) Acc(proc, r0, r1, c0, c1 int, src []float64, ld int, alpha float64) {
	g.charge(proc, r0, r1, c0, c1)
	for _, p := range g.Grid.Patches(r0, r1, c0, c1) {
		g.locks[p.Proc].Lock()
		for r := p.R0; r < p.R1; r++ {
			dst := g.data[r*g.Grid.Cols+p.C0 : r*g.Grid.Cols+p.C1]
			row := src[(r-r0)*ld+(p.C0-c0):]
			for i := range dst {
				dst[i] += alpha * row[i]
			}
		}
		g.locks[p.Proc].Unlock()
	}
}

// precheck runs the fault hook for one fallible operation: it sleeps any
// injected delay and, on a drop, charges the wasted call and returns
// ErrDropped.
func (g *GlobalArray) precheck(proc int, op OpKind) error {
	if g.hook == nil {
		return nil
	}
	delay, drop := g.hook(proc, op)
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		g.stats.Per[proc].Calls++ // the request was issued and lost
		atomic.AddInt64(&g.stats.Recovery.OpDrops, 1)
		return ErrDropped
	}
	return nil
}

// TryGet is Get through the fault hook: it may fail with ErrDropped
// (nothing copied), in which case the caller retries.
func (g *GlobalArray) TryGet(proc, r0, r1, c0, c1 int, dst []float64, ld int) error {
	if err := g.precheck(proc, OpGet); err != nil {
		return err
	}
	g.Get(proc, r0, r1, c0, c1, dst, ld)
	return nil
}

// TryPut is Put through the fault hook.
func (g *GlobalArray) TryPut(proc, r0, r1, c0, c1 int, src []float64, ld int) error {
	if err := g.precheck(proc, OpPut); err != nil {
		return err
	}
	g.Put(proc, r0, r1, c0, c1, src, ld)
	return nil
}

// TryAcc is Acc through the fault hook.
func (g *GlobalArray) TryAcc(proc, r0, r1, c0, c1 int, src []float64, ld int, alpha float64) error {
	if err := g.precheck(proc, OpAcc); err != nil {
		return err
	}
	g.Acc(proc, r0, r1, c0, c1, src, ld, alpha)
	return nil
}

// AccFenced is TryAcc gated by epoch fencing: the contribution is applied
// only if the installed Fence still considers (proc, epoch) a live
// incarnation; a stale epoch returns ErrFenced and changes nothing. A
// drop is reported before the fence so retries re-validate.
func (g *GlobalArray) AccFenced(proc int, epoch int64, r0, r1, c0, c1 int, src []float64, ld int, alpha float64) error {
	if err := g.precheck(proc, OpAcc); err != nil {
		return err
	}
	if g.fence != nil && !g.fence.ValidEpoch(proc, epoch) {
		return ErrFenced
	}
	g.Acc(proc, r0, r1, c0, c1, src, ld, alpha)
	return nil
}

// maxRetryBackoff caps the exponential backoff of the retry wrappers so
// a long retry run polls steadily instead of sleeping unboundedly.
const maxRetryBackoff = time.Second

// Jitter spreads a backoff interval uniformly over [d/2, 3d/2) so
// concurrent retriers desynchronize instead of hammering the transport
// in lockstep (retry-storm avoidance). Exported for the net backend.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// SleepBackoff sleeps a jittered backoff of nominally d (capped at 1s),
// returning early with ctx.Err() when the context expires first. A nil
// ctx means no deadline. Shared by every retry loop in this repository
// so backoff behavior (cap, jitter, deadline) is uniform across
// transports.
func SleepBackoff(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	d = Jitter(d)
	if d <= 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// GetRetry retries TryGet with capped, jittered exponential backoff for
// up to attempts tries, counting retries in the recovery stats, and
// abandons early when ctx's deadline expires (bounding the total retry
// wall time). It returns the number of retries it issued (0 on a clean
// first attempt, for the caller's per-worker accounting) and the last
// error when every attempt drops or the deadline passes.
func (g *GlobalArray) GetRetry(ctx context.Context, attempts int, backoff time.Duration, proc, r0, r1, c0, c1 int, dst []float64, ld int) (int, error) {
	if attempts <= 0 {
		attempts = 1
	}
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			atomic.AddInt64(&g.stats.Recovery.OpRetries, 1)
			if cerr := SleepBackoff(ctx, backoff<<(a-1)); cerr != nil {
				return a - 1, cerr
			}
		}
		if err = g.TryGet(proc, r0, r1, c0, c1, dst, ld); err == nil {
			return a, nil
		}
	}
	return attempts - 1, err
}

// AccFencedRetry retries AccFenced until it applies or is fenced, with
// capped, jittered exponential backoff between attempts. Drops are
// retried until ctx expires — with a deadline-free ctx, indefinitely;
// liveness then holds because the injector bounds consecutive drops —
// so a commit in progress either lands every patch exactly once, is
// rejected whole by a stale epoch, or (deadline) reports ctx.Err() to a
// caller that must still be before its point of no return. The retry
// count feeds the caller's per-worker accounting.
func (g *GlobalArray) AccFencedRetry(ctx context.Context, backoff time.Duration, proc int, epoch int64, r0, r1, c0, c1 int, src []float64, ld int, alpha float64) (int, error) {
	wait := backoff
	for retries := 0; ; retries++ {
		err := g.AccFenced(proc, epoch, r0, r1, c0, c1, src, ld, alpha)
		if err == nil || errors.Is(err, ErrFenced) {
			return retries, err
		}
		atomic.AddInt64(&g.stats.Recovery.OpRetries, 1)
		if cerr := SleepBackoff(ctx, wait); cerr != nil {
			return retries, cerr
		}
		if wait > 0 && wait < maxRetryBackoff {
			wait *= 2
		}
	}
}

// ToMatrix copies the full array into a dense matrix (no accounting; a
// host-side convenience for verification and output).
func (g *GlobalArray) ToMatrix() *linalg.Matrix {
	m := linalg.NewMatrix(g.Grid.Rows, g.Grid.Cols)
	copy(m.Data, g.data)
	return m
}

// LoadMatrix fills the array from a dense matrix (no accounting).
func (g *GlobalArray) LoadMatrix(m *linalg.Matrix) {
	if m.Rows != g.Grid.Rows || m.Cols != g.Grid.Cols {
		panic("dist: LoadMatrix shape mismatch")
	}
	copy(g.data, m.Data)
}

// Zero resets all elements (no accounting).
func (g *GlobalArray) Zero() {
	for i := range g.data {
		g.data[i] = 0
	}
}

// RunProcs runs fn(rank) on p concurrent goroutine processes and waits for
// all of them (the SPMD launch used by real-mode algorithms).
func RunProcs(p int, fn func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(r int) {
			defer wg.Done()
			fn(r)
		}(rank)
	}
	wg.Wait()
}
