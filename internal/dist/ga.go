package dist

import (
	"sync"

	"gtfock/internal/linalg"
)

// GlobalArray is a shared-memory stand-in for a Global Arrays 2D
// block-distributed array: goroutine "processes" address it with one-sided
// Get/Put/Acc operations on arbitrary rectangular patches, and every
// operation is accounted against the calling process exactly as the paper
// instruments GA (call counts and transfer volumes, Tables VI/VII; volumes
// include local transfers, matching the paper's measurement note in
// Sec. IV-C).
//
// Concurrency contract: Acc and Put from concurrent processes are safe
// (per-owner-block locking). Get is unsynchronized and must be separated
// from writes by a barrier, which is how the Fock builders use it
// (prefetch phase reads D; accumulate phase writes F).
type GlobalArray struct {
	Grid  *Grid2D
	data  []float64
	locks []sync.Mutex // one per owner block
	stats *RunStats
}

// NewGlobalArray creates a zeroed global array over grid, accounting into
// stats (which must have grid.NumProcs() entries).
func NewGlobalArray(grid *Grid2D, stats *RunStats) *GlobalArray {
	return &GlobalArray{
		Grid:  grid,
		data:  make([]float64, grid.Rows*grid.Cols),
		locks: make([]sync.Mutex, grid.NumProcs()),
		stats: stats,
	}
}

// charge records one one-sided call touching the given patches.
func (g *GlobalArray) charge(proc int, r0, r1, c0, c1 int) {
	st := &g.stats.Per[proc]
	st.Calls++
	elems := int64(r1-r0) * int64(c1-c0)
	st.Bytes += 8 * elems
	for _, p := range g.Grid.Patches(r0, r1, c0, c1) {
		if p.Proc != proc {
			st.RemoteBytes += 8 * int64(p.Elems())
		}
	}
}

// Get copies the patch [r0,r1) x [c0,c1) into dst with leading dimension
// ld (dst row stride). One GA call.
func (g *GlobalArray) Get(proc, r0, r1, c0, c1 int, dst []float64, ld int) {
	g.charge(proc, r0, r1, c0, c1)
	w := c1 - c0
	for r := r0; r < r1; r++ {
		copy(dst[(r-r0)*ld:(r-r0)*ld+w], g.data[r*g.Grid.Cols+c0:r*g.Grid.Cols+c1])
	}
}

// Put stores src (leading dimension ld) into the patch. One GA call.
func (g *GlobalArray) Put(proc, r0, r1, c0, c1 int, src []float64, ld int) {
	g.charge(proc, r0, r1, c0, c1)
	for _, p := range g.Grid.Patches(r0, r1, c0, c1) {
		g.locks[p.Proc].Lock()
		for r := p.R0; r < p.R1; r++ {
			copy(g.data[r*g.Grid.Cols+p.C0:r*g.Grid.Cols+p.C1],
				src[(r-r0)*ld+(p.C0-c0):(r-r0)*ld+(p.C1-c0)])
		}
		g.locks[p.Proc].Unlock()
	}
}

// Acc atomically accumulates alpha*src into the patch. One GA call.
func (g *GlobalArray) Acc(proc, r0, r1, c0, c1 int, src []float64, ld int, alpha float64) {
	g.charge(proc, r0, r1, c0, c1)
	for _, p := range g.Grid.Patches(r0, r1, c0, c1) {
		g.locks[p.Proc].Lock()
		for r := p.R0; r < p.R1; r++ {
			dst := g.data[r*g.Grid.Cols+p.C0 : r*g.Grid.Cols+p.C1]
			row := src[(r-r0)*ld+(p.C0-c0):]
			for i := range dst {
				dst[i] += alpha * row[i]
			}
		}
		g.locks[p.Proc].Unlock()
	}
}

// ToMatrix copies the full array into a dense matrix (no accounting; a
// host-side convenience for verification and output).
func (g *GlobalArray) ToMatrix() *linalg.Matrix {
	m := linalg.NewMatrix(g.Grid.Rows, g.Grid.Cols)
	copy(m.Data, g.data)
	return m
}

// LoadMatrix fills the array from a dense matrix (no accounting).
func (g *GlobalArray) LoadMatrix(m *linalg.Matrix) {
	if m.Rows != g.Grid.Rows || m.Cols != g.Grid.Cols {
		panic("dist: LoadMatrix shape mismatch")
	}
	copy(g.data, m.Data)
}

// Zero resets all elements (no accounting).
func (g *GlobalArray) Zero() {
	for i := range g.data {
		g.data[i] = 0
	}
}

// RunProcs runs fn(rank) on p concurrent goroutine processes and waits for
// all of them (the SPMD launch used by real-mode algorithms).
func RunProcs(p int, fn func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(r int) {
			defer wg.Done()
			fn(r)
		}(rank)
	}
	wg.Wait()
}
