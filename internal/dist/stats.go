package dist

import "math"

// ProcStats accumulates per-process accounting, mirroring the quantities
// the paper reports in Tables VI-VIII and Fig. 2. In real mode times are
// wall-clock seconds; in sim mode they are virtual seconds.
type ProcStats struct {
	Calls       int64   // one-sided communication calls (Table VII)
	Bytes       int64   // total communication volume incl. local (Table VI)
	RemoteBytes int64   // volume crossing process boundaries
	ComputeTime float64 // T_comp contribution
	CommTime    float64 // time charged to communication
	IdleTime    float64 // time waiting with no work available
	Steals      int64   // successful steals performed by this process
	Victims     int64   // distinct victims stolen from (the model's s)
	QueueOps    int64   // atomic task-queue operations touching this process
	TasksRun    int64   // tasks executed by this process
	TotalTime   float64 // T_fock for this process
}

// Add accumulates o into s.
func (s *ProcStats) Add(o ProcStats) {
	s.Calls += o.Calls
	s.Bytes += o.Bytes
	s.RemoteBytes += o.RemoteBytes
	s.ComputeTime += o.ComputeTime
	s.CommTime += o.CommTime
	s.IdleTime += o.IdleTime
	s.Steals += o.Steals
	s.Victims += o.Victims
	s.QueueOps += o.QueueOps
	s.TasksRun += o.TasksRun
	s.TotalTime += o.TotalTime
}

// RecoveryStats counts fault-tolerance events of a run. Fields are
// updated with sync/atomic by workers, the lease monitor, and the
// global-array fault path concurrently; read them after the run joins.
type RecoveryStats struct {
	Crashes          int64 // injected worker crashes
	Stalls           int64 // injected worker stalls
	Aborts           int64 // workers abandoned after exhausting op retries
	WorkersFenced    int64 // incarnations declared dead (lease expiry or sweep)
	BlocksOrphaned   int64 // task blocks confiscated from fenced workers
	BlocksReassigned int64 // orphaned blocks adopted by surviving workers
	TasksReassigned  int64 // tasks in those adopted blocks
	FencedFlushes    int64 // zombie flushes discarded by epoch fencing
	OpDrops          int64 // one-sided ops lost in transport
	OpRetries        int64 // retries issued by the reliable op wrappers
	Rounds           int64 // extra recovery rounds beyond the first
	Failovers        int64 // shard servers replaced by a promoted standby
}

// Any reports whether any recovery event occurred.
func (r *RecoveryStats) Any() bool {
	return r.Crashes+r.Stalls+r.Aborts+r.WorkersFenced+r.BlocksOrphaned+
		r.BlocksReassigned+r.FencedFlushes+r.OpDrops+r.OpRetries+r.Rounds+
		r.Failovers > 0
}

// RunStats aggregates a whole Fock-build run.
type RunStats struct {
	Per      []ProcStats
	Recovery RecoveryStats
}

// NewRunStats allocates stats for p processes.
func NewRunStats(p int) *RunStats { return &RunStats{Per: make([]ProcStats, p)} }

// P returns the number of processes.
func (r *RunStats) P() int { return len(r.Per) }

// perAvg averages one ProcStats field over the processes; 0 for an
// empty (0-process) run rather than 0/0 = NaN.
func (r *RunStats) perAvg(f func(*ProcStats) float64) float64 {
	if len(r.Per) == 0 {
		return 0
	}
	var s float64
	for i := range r.Per {
		s += f(&r.Per[i])
	}
	return s / float64(len(r.Per))
}

// TFockAvg returns the average per-process total time (the paper's
// T_fock).
func (r *RunStats) TFockAvg() float64 {
	return r.perAvg(func(p *ProcStats) float64 { return p.TotalTime })
}

// TFockMax returns the makespan (slowest process).
func (r *RunStats) TFockMax() float64 {
	var m float64
	for i := range r.Per {
		if r.Per[i].TotalTime > m {
			m = r.Per[i].TotalTime
		}
	}
	return m
}

// TCompAvg returns the average per-process computation-only time.
func (r *RunStats) TCompAvg() float64 {
	return r.perAvg(func(p *ProcStats) float64 { return p.ComputeTime })
}

// TOverheadAvg returns the paper's T_ov = T_fock - T_comp (Fig. 2).
func (r *RunStats) TOverheadAvg() float64 { return r.TFockAvg() - r.TCompAvg() }

// LoadBalance returns l = T_max/T_avg (Table VIII). A run with no
// recorded time — zero processes, or a 0-task grid whose workers never
// ticked the clock — is perfectly balanced by definition: 1, never NaN.
func (r *RunStats) LoadBalance() float64 {
	avg := r.TFockAvg()
	if avg == 0 {
		return 1
	}
	return r.TFockMax() / avg
}

// VolumeAvgMB returns the average per-process communication volume in MB
// (Table VI; MB = 1e6 bytes).
func (r *RunStats) VolumeAvgMB() float64 {
	return r.perAvg(func(p *ProcStats) float64 { return float64(p.Bytes) }) / 1e6
}

// CallsAvg returns the average per-process number of one-sided calls
// (Table VII).
func (r *RunStats) CallsAvg() float64 {
	return r.perAvg(func(p *ProcStats) float64 { return float64(p.Calls) })
}

// StealsAvg returns the average number of successful steals per process.
func (r *RunStats) StealsAvg() float64 {
	return r.perAvg(func(p *ProcStats) float64 { return float64(p.Steals) })
}

// VictimsAvg returns s, the average number of distinct victims per process
// (Sec. III-G; measured 3.8 for C96H24 at 3888 cores in the paper).
func (r *RunStats) VictimsAvg() float64 {
	return r.perAvg(func(p *ProcStats) float64 { return float64(p.Victims) })
}

// QueueOpsAvg returns the average number of atomic queue operations per
// process queue (Sec. IV-C scheduler-overhead discussion).
func (r *RunStats) QueueOpsAvg() float64 {
	return r.perAvg(func(p *ProcStats) float64 { return float64(p.QueueOps) })
}

// QueueOpsTotal returns the total number of atomic queue operations (for
// NWChem's centralized queue this is the access count of the single
// global counter).
func (r *RunStats) QueueOpsTotal() int64 {
	var c int64
	for i := range r.Per {
		c += r.Per[i].QueueOps
	}
	return c
}

// Speedup returns ref/t where ref is a reference sequential-equivalent
// time; convenience for Table IV.
func Speedup(ref, t float64) float64 {
	if t == 0 {
		return math.Inf(1)
	}
	return ref / t
}
