package dist

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gtfock/internal/linalg"
)

func TestUniformCuts(t *testing.T) {
	cuts := UniformCuts(10, 3)
	want := []int{0, 3, 6, 10}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v", cuts)
		}
	}
	// Every element covered exactly once.
	cuts = UniformCuts(7, 7)
	for i := 0; i < 7; i++ {
		if cuts[i+1]-cuts[i] != 1 {
			t.Fatal("uneven singleton cuts")
		}
	}
}

func TestGridOwnership(t *testing.T) {
	g := UniformGrid2D(2, 3, 10, 9)
	for r := 0; r < 10; r++ {
		for c := 0; c < 9; c++ {
			p := g.Owner(r, c)
			i, j := g.Coords(p)
			if g.ProcID(i, j) != p {
				t.Fatal("coords roundtrip")
			}
			if r < g.RowCuts[i] || r >= g.RowCuts[i+1] {
				t.Fatalf("row %d not in owner block %d", r, i)
			}
			if c < g.ColCuts[j] || c >= g.ColCuts[j+1] {
				t.Fatalf("col %d not in owner block %d", c, j)
			}
		}
	}
}

func TestGridPatchesCoverRegion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		prow, pcol := 1+rng.Intn(5), 1+rng.Intn(5)
		if prow > rows {
			prow = rows
		}
		if pcol > cols {
			pcol = cols
		}
		g := UniformGrid2D(prow, pcol, rows, cols)
		r0 := rng.Intn(rows)
		r1 := r0 + 1 + rng.Intn(rows-r0)
		c0 := rng.Intn(cols)
		c1 := c0 + 1 + rng.Intn(cols-c0)
		seen := map[[2]int]int{}
		total := 0
		for _, p := range g.Patches(r0, r1, c0, c1) {
			if p.Elems() <= 0 {
				return false
			}
			total += p.Elems()
			for r := p.R0; r < p.R1; r++ {
				for c := p.C0; c < p.C1; c++ {
					if g.Owner(r, c) != p.Proc {
						return false
					}
					seen[[2]int{r, c}]++
				}
			}
		}
		if total != (r1-r0)*(c1-c0) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalArrayGetPutAcc(t *testing.T) {
	g := UniformGrid2D(2, 2, 6, 6)
	st := NewRunStats(4)
	ga := NewGlobalArray(g, st)

	src := make([]float64, 6)
	for i := range src {
		src[i] = float64(i + 1)
	}
	ga.Put(0, 1, 3, 2, 5, src, 3) // 2x3 patch spanning owner blocks
	got := make([]float64, 6)
	ga.Get(1, 1, 3, 2, 5, got, 3)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("roundtrip: %v vs %v", got, src)
		}
	}
	ga.Acc(2, 1, 3, 2, 5, src, 3, 2)
	ga.Get(1, 1, 3, 2, 5, got, 3)
	for i := range src {
		if got[i] != 3*src[i] {
			t.Fatalf("acc: got %v want %v", got[i], 3*src[i])
		}
	}
	// Accounting: proc 0 made 1 call of 48 bytes.
	if st.Per[0].Calls != 1 || st.Per[0].Bytes != 48 {
		t.Fatalf("proc0 stats %+v", st.Per[0])
	}
	if st.Per[1].Calls != 2 {
		t.Fatalf("proc1 calls %d", st.Per[1].Calls)
	}
	// The 2x3 patch at rows 1-2, cols 2-4 on a 2x2 grid of 6x6: proc 0
	// owns rows 0-2 cols 0-2, so element (1,2),(2,2) belong to proc 1...
	// at minimum some bytes must be remote for proc 2's Acc.
	if st.Per[2].RemoteBytes == 0 {
		t.Fatal("expected remote bytes for proc 2")
	}
}

func TestGlobalArrayConcurrentAcc(t *testing.T) {
	g := UniformGrid2D(2, 2, 8, 8)
	const P = 8
	st := NewRunStats(P)
	ga := NewGlobalArray(g, st)
	src := make([]float64, 64)
	for i := range src {
		src[i] = 1
	}
	RunProcs(P, func(rank int) {
		for k := 0; k < 50; k++ {
			ga.Acc(rank, 0, 8, 0, 8, src, 8, 1)
		}
	})
	m := ga.ToMatrix()
	for _, v := range m.Data {
		if v != P*50 {
			t.Fatalf("lost update: %v != %v", v, P*50)
		}
	}
}

func TestGlobalArrayLoadToMatrix(t *testing.T) {
	g := UniformGrid2D(3, 2, 5, 4)
	ga := NewGlobalArray(g, NewRunStats(6))
	m := linalg.NewMatrix(5, 4)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.5
	}
	ga.LoadMatrix(m)
	back := ga.ToMatrix()
	if linalg.MaxAbsDiff(m, back) != 0 {
		t.Fatal("LoadMatrix/ToMatrix roundtrip")
	}
	ga.Zero()
	if ga.ToMatrix().MaxAbs() != 0 {
		t.Fatal("Zero")
	}
}

func TestRunStatsAggregates(t *testing.T) {
	rs := NewRunStats(2)
	rs.Per[0] = ProcStats{TotalTime: 10, ComputeTime: 8, Bytes: 2e6, Calls: 10, Steals: 1, Victims: 1, QueueOps: 5}
	rs.Per[1] = ProcStats{TotalTime: 14, ComputeTime: 9, Bytes: 4e6, Calls: 30, Steals: 3, Victims: 2, QueueOps: 7}
	if rs.TFockAvg() != 12 || rs.TFockMax() != 14 {
		t.Fatal("TFock aggregates")
	}
	if rs.TCompAvg() != 8.5 {
		t.Fatal("TCompAvg")
	}
	if math.Abs(rs.TOverheadAvg()-3.5) > 1e-15 {
		t.Fatal("TOverheadAvg")
	}
	if math.Abs(rs.LoadBalance()-14.0/12) > 1e-15 {
		t.Fatal("LoadBalance")
	}
	if rs.VolumeAvgMB() != 3 || rs.CallsAvg() != 20 {
		t.Fatal("volume/calls")
	}
	if rs.StealsAvg() != 2 || rs.VictimsAvg() != 1.5 {
		t.Fatal("steals")
	}
	if rs.QueueOpsAvg() != 6 || rs.QueueOpsTotal() != 12 {
		t.Fatal("queue ops")
	}
}

func TestProcStatsAdd(t *testing.T) {
	a := ProcStats{Calls: 1, Bytes: 2, ComputeTime: 3, TotalTime: 4, Steals: 5}
	a.Add(ProcStats{Calls: 10, Bytes: 20, ComputeTime: 30, TotalTime: 40, Steals: 50})
	if a.Calls != 11 || a.Bytes != 22 || a.ComputeTime != 33 || a.TotalTime != 44 || a.Steals != 55 {
		t.Fatalf("Add: %+v", a)
	}
}

func TestEventHeapOrdering(t *testing.T) {
	var h EventHeap
	heap.Init(&h)
	PushEvent(&h, Event{At: 3, Proc: 1})
	PushEvent(&h, Event{At: 1, Proc: 2})
	PushEvent(&h, Event{At: 1, Proc: 0})
	PushEvent(&h, Event{At: 2, Proc: 3})
	want := []Event{{1, 0, 0}, {1, 2, 0}, {2, 3, 0}, {3, 1, 0}}
	for _, w := range want {
		e := PopEvent(&h)
		if e.At != w.At || e.Proc != w.Proc {
			t.Fatalf("got %+v want %+v", e, w)
		}
	}
}

func TestCentralQueueSerializes(t *testing.T) {
	q := CentralQueue{ServiceSec: 1, LatencySec: 0.5}
	// Three simultaneous requests at t=0 serialize.
	t1 := q.Access(0)
	t2 := q.Access(0)
	t3 := q.Access(0)
	if t1 != 1.5 || t2 != 2.5 || t3 != 3.5 {
		t.Fatalf("serialized times %v %v %v", t1, t2, t3)
	}
	if q.Accesses != 3 {
		t.Fatal("access count")
	}
	// A late request after the queue is free pays only service+latency.
	t4 := q.Access(100)
	if t4 != 101.5 {
		t.Fatalf("idle-queue access time %v", t4)
	}
}

func TestCommTime(t *testing.T) {
	c := Lonestar()
	got := c.CommTime(2, 5e9)
	want := 2*c.LatencySec + 1.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CommTime = %v, want %v", got, want)
	}
}

func TestSquareGridFor(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 12: {3, 4}, 81: {9, 9}, 324: {18, 18}, 7: {1, 7}}
	for n, want := range cases {
		pr, pc := SquareGridFor(n)
		if pr != want[0] || pc != want[1] {
			t.Fatalf("SquareGridFor(%d) = %d,%d", n, pr, pc)
		}
		if pr*pc != n {
			t.Fatal("grid does not cover n")
		}
	}
}

func TestNodesFor(t *testing.T) {
	c := Lonestar()
	n, err := c.NodesFor(3888)
	if err != nil || n != 324 {
		t.Fatalf("NodesFor(3888) = %d, %v", n, err)
	}
	if _, err := c.NodesFor(13); err == nil {
		t.Fatal("expected error for non-multiple")
	}
}

func TestPaperCoreCountsAreSquareNodeGrids(t *testing.T) {
	c := Lonestar()
	for _, cores := range PaperCoreCounts {
		nodes, err := c.NodesFor(cores)
		if err != nil {
			t.Fatal(err)
		}
		if !IsPerfectSquare(nodes) {
			t.Fatalf("%d cores -> %d nodes, not square", cores, nodes)
		}
	}
}
