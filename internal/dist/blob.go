package dist

import (
	"errors"
	"sync"
)

// ErrBlobMiss reports a GetBlob key the store does not hold. The
// stored-ERI cache tier treats any fetch error as a miss and recomputes,
// so implementations may also return transport errors.
var ErrBlobMiss = errors.New("dist: blob not found")

// MemBlobStore is the in-process spill backend of the stored-ERI cache
// tier (it satisfies integrals.BlobStore structurally): an immutable
// put-once/get map of float64 batches. It models the shard-fleet blob
// ops (netga opPutBlob/opGetBlob) for single-process runs and tests —
// same semantics, no wire.
type MemBlobStore struct {
	mu    sync.Mutex
	blobs map[uint64][]float64
}

// NewMemBlobStore creates an empty store.
func NewMemBlobStore() *MemBlobStore {
	return &MemBlobStore{blobs: map[uint64][]float64{}}
}

// PutBlob stores a copy of vals under key; the first write wins and
// re-puts are ignored (spill blobs are immutable and re-puts from
// re-executed tasks carry identical data).
func (s *MemBlobStore) PutBlob(key uint64, vals []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[key]; !ok {
		s.blobs[key] = append([]float64(nil), vals...)
	}
	return nil
}

// GetBlob copies the blob into dst (reusing its capacity) and returns
// the filled slice, or ErrBlobMiss.
func (s *MemBlobStore) GetBlob(key uint64, dst []float64) ([]float64, error) {
	s.mu.Lock()
	v, ok := s.blobs[key]
	s.mu.Unlock()
	if !ok {
		return nil, ErrBlobMiss
	}
	return append(dst[:0], v...), nil
}

// Len returns the number of stored blobs (test/diagnostic hook).
func (s *MemBlobStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}
