package dist

// Event is a scheduled DES event: process proc reaches an interesting
// point (end of its queued work) at virtual time At. Ver guards against
// stale heap entries after a victim's finish time changes (lazy deletion).
type Event struct {
	At   float64
	Proc int
	Ver  int64
}

// EventHeap is a min-heap of events ordered by time (ties by process id
// for determinism).
type EventHeap []Event

func (h EventHeap) Len() int { return len(h) }
func (h EventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].Proc < h[j].Proc
}
func (h EventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *EventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *EventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// PushEvent adds an event (allocation-free sift-up; equivalent to
// heap.Push but without interface boxing — the simulators push hundreds
// of millions of events).
func PushEvent(h *EventHeap, e Event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.Less(i, parent) {
			break
		}
		s.Swap(i, parent)
		i = parent
	}
}

// PopEvent removes and returns the earliest event.
func PopEvent(h *EventHeap) Event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.Less(l, smallest) {
			smallest = l
		}
		if r < n && s.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s.Swap(i, smallest)
		i = smallest
	}
	return top
}

// CentralQueue models the serialized centralized task counter of NWChem's
// dynamic scheduler (Sec. II-F): each access occupies the server for
// ServiceSec, so concurrent accesses queue up — the scheduler bottleneck
// the paper identifies at large core counts.
type CentralQueue struct {
	FreeAt     float64
	ServiceSec float64
	LatencySec float64
	Accesses   int64
}

// Access performs one counter access issued at time t and returns the time
// at which the caller receives its response.
func (q *CentralQueue) Access(t float64) float64 {
	start := t
	if q.FreeAt > start {
		start = q.FreeAt
	}
	q.FreeAt = start + q.ServiceSec
	q.Accesses++
	return q.FreeAt + q.LatencySec
}
