package dist

import (
	"context"
	"time"

	"gtfock/internal/linalg"
)

// Backend is the one-sided Global Arrays surface a real-mode Fock build
// runs over. Two implementations exist:
//
//   - GlobalArray, the in-process shared-memory stand-in (goroutine
//     "processes", optional injected transport faults), and
//   - the TCP transport in internal/net (package netga), where the D and
//     F shards live in separate server processes and every Get/Acc is a
//     framed RPC with deadlines, retries and idempotent accumulation.
//
// core.Build and the lease/epoch recovery machinery are written against
// this interface, so the same build — including its exactly-once
// accumulation argument — runs unchanged over either transport.
type Backend interface {
	// Layout returns the 2D block distribution the backend serves.
	Layout() *Grid2D

	// Get copies the patch [r0,r1) x [c0,c1) into dst (leading dimension
	// ld), charging the call to proc. Infallible: only used by builds on
	// a backend whose Fallible() is false.
	Get(proc, r0, r1, c0, c1 int, dst []float64, ld int)

	// Acc atomically accumulates alpha*src into the patch. Infallible;
	// see Get.
	Acc(proc, r0, r1, c0, c1 int, src []float64, ld int, alpha float64)

	// GetRetry is Get with a bounded retry loop: up to attempts tries
	// separated by capped, jittered exponential backoff, abandoned early
	// when ctx's deadline expires. It returns the number of retries
	// issued and the last error when every attempt failed.
	GetRetry(ctx context.Context, attempts int, backoff time.Duration, proc, r0, r1, c0, c1 int, dst []float64, ld int) (int, error)

	// AccFencedRetry accumulates with epoch fencing and retries transport
	// failures until the contribution lands exactly once, the fence
	// reports (proc, epoch) stale (ErrFenced, nothing further applied),
	// or ctx expires. Callers must treat a ctx error before the first
	// landed patch of a flush as a clean abandonment and anything later
	// as unabortable (see core.Build's commit protocol).
	AccFencedRetry(ctx context.Context, backoff time.Duration, proc int, epoch int64, r0, r1, c0, c1 int, src []float64, ld int, alpha float64) (int, error)

	// SetFence installs the epoch authority consulted by AccFencedRetry.
	// Must be called before concurrent operations start.
	SetFence(f Fence)

	// Fallible reports whether one-sided operations on this backend can
	// fail (network transport, or an in-process array with a fault hook).
	// Builds over a fallible backend must use the retrying wrappers.
	Fallible() bool

	// LoadMatrix fills the array from a dense matrix; ToMatrix reads the
	// whole array back. Driver-side (not accounted, not fault-injected).
	LoadMatrix(m *linalg.Matrix)
	ToMatrix() *linalg.Matrix
}

// GlobalArray implements Backend.
var _ Backend = (*GlobalArray)(nil)

// Layout returns the grid of the array (Backend interface).
func (g *GlobalArray) Layout() *Grid2D { return g.Grid }

// Fallible reports whether a fault hook is installed: without one the
// infallible fast-path operations are exact and never dropped.
func (g *GlobalArray) Fallible() bool { return g.hook != nil }
