// Package dist is the distributed-computing substrate standing in for the
// Global Arrays / MPI / InfiniBand stack of the paper's experiments.
//
// It provides two things:
//
//  1. A *real* shared-memory implementation of the one-sided operations
//     GTFock uses (Get/Put/Acc on 2D block-distributed global arrays),
//     executed by goroutine "processes" with per-process communication
//     accounting. This mode runs the algorithms for real and is used for
//     correctness tests and laptop-scale speedups.
//
//  2. A discrete-event simulation (DES) layer — virtual per-process
//     clocks, an event heap, and an alpha-beta (latency + bandwidth)
//     communication cost model with the paper's machine constants — used
//     to reproduce the paper-scale experiments (12...3888 cores) that no
//     laptop can run. The DES preserves exactly the quantities the paper
//     reports: per-process compute time, parallel overhead, communication
//     volume and call counts, steals, and load balance.
package dist

import "fmt"

// Grid2D is a prow x pcol virtual process grid owning a 2D blocked
// distribution of an nrows x ncols matrix (paper Sec. III-C/E): process
// p_{ij} owns rows [RowCuts[i], RowCuts[i+1]) and columns
// [ColCuts[j], ColCuts[j+1]).
type Grid2D struct {
	Prow, Pcol int
	Rows, Cols int
	RowCuts    []int // len Prow+1, RowCuts[0]=0, RowCuts[Prow]=Rows
	ColCuts    []int // len Pcol+1
}

// NewGrid2D builds a grid with the given cut points.
func NewGrid2D(prow, pcol int, rowCuts, colCuts []int) *Grid2D {
	if len(rowCuts) != prow+1 || len(colCuts) != pcol+1 {
		panic("dist: cut length mismatch")
	}
	for i := 0; i < prow; i++ {
		if rowCuts[i] > rowCuts[i+1] {
			panic("dist: row cuts not monotone")
		}
	}
	for j := 0; j < pcol; j++ {
		if colCuts[j] > colCuts[j+1] {
			panic("dist: col cuts not monotone")
		}
	}
	return &Grid2D{
		Prow: prow, Pcol: pcol,
		Rows: rowCuts[prow], Cols: colCuts[pcol],
		RowCuts: rowCuts, ColCuts: colCuts,
	}
}

// UniformGrid2D builds a grid with near-equal block sizes.
func UniformGrid2D(prow, pcol, rows, cols int) *Grid2D {
	return NewGrid2D(prow, pcol, UniformCuts(rows, prow), UniformCuts(cols, pcol))
}

// UniformCuts splits n items into p near-equal contiguous ranges.
func UniformCuts(n, p int) []int {
	cuts := make([]int, p+1)
	for i := 0; i <= p; i++ {
		cuts[i] = i * n / p
	}
	return cuts
}

// NumProcs returns prow*pcol.
func (g *Grid2D) NumProcs() int { return g.Prow * g.Pcol }

// ProcID returns the linear process id of grid coordinates (i, j).
func (g *Grid2D) ProcID(i, j int) int { return i*g.Pcol + j }

// Coords returns the grid coordinates of linear process id p.
func (g *Grid2D) Coords(p int) (i, j int) { return p / g.Pcol, p % g.Pcol }

// RowOwner returns the grid row index owning matrix row r.
func (g *Grid2D) RowOwner(r int) int { return ownerOf(g.RowCuts, r) }

// ColOwner returns the grid column index owning matrix column c.
func (g *Grid2D) ColOwner(c int) int { return ownerOf(g.ColCuts, c) }

// Owner returns the linear process id owning element (r, c).
func (g *Grid2D) Owner(r, c int) int {
	return g.ProcID(g.RowOwner(r), g.ColOwner(c))
}

func ownerOf(cuts []int, x int) int {
	lo, hi := 0, len(cuts)-1
	if x < 0 || x >= cuts[hi] {
		panic(fmt.Sprintf("dist: index %d out of range [0,%d)", x, cuts[hi]))
	}
	// Binary search for the block containing x (empty blocks skipped).
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if cuts[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Patch is a rectangular region [R0,R1) x [C0,C1) owned by one process.
type Patch struct {
	Proc           int
	R0, R1, C0, C1 int
}

// Elems returns the number of elements of the patch.
func (p Patch) Elems() int { return (p.R1 - p.R0) * (p.C1 - p.C0) }

// Patches decomposes the region [r0,r1) x [c0,c1) into per-owner patches,
// in row-major owner order. Empty patches are skipped.
func (g *Grid2D) Patches(r0, r1, c0, c1 int) []Patch {
	var out []Patch
	if r0 >= r1 || c0 >= c1 {
		return out
	}
	for bi := g.RowOwner(r0); bi < g.Prow && g.RowCuts[bi] < r1; bi++ {
		pr0, pr1 := maxInt(r0, g.RowCuts[bi]), minInt(r1, g.RowCuts[bi+1])
		if pr0 >= pr1 {
			continue
		}
		for bj := g.ColOwner(c0); bj < g.Pcol && g.ColCuts[bj] < c1; bj++ {
			pc0, pc1 := maxInt(c0, g.ColCuts[bj]), minInt(c1, g.ColCuts[bj+1])
			if pc0 >= pc1 {
				continue
			}
			out = append(out, Patch{Proc: g.ProcID(bi, bj), R0: pr0, R1: pr1, C0: pc0, C1: pc1})
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
