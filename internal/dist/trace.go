package dist

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span kinds recorded by simulation and real-mode traces.
const (
	SpanCompute  = 'c' // ERI computation
	SpanComm     = 'm' // communication (sim-mode aggregate)
	SpanSteal    = 's' // steal scan + stolen-block transfer
	SpanIdle     = '.' // waiting with no work reachable
	SpanPrefetch = 'p' // D-block prefetch (real mode)
	SpanFlush    = 'f' // F accumulate flush (real mode)
	SpanRPC      = 'r' // one netga RPC, including its retries (net backend)
)

// Span is one activity interval of a process. Real-mode spans carry the
// epoch of the worker incarnation that recorded them; spans of fenced
// incarnations are marked Discarded after the run — their work never
// reached the global F, so duration accounting must not count them.
type Span struct {
	Proc       int
	Epoch      int64
	Start, End float64
	Kind       byte
	Discarded  bool
}

// Trace collects activity spans from a run for post-hoc inspection (an
// observability aid; sim-mode rendering is approximate where the fluid
// work model revises earlier intervals, and real-mode span boundaries
// cost one clock read each).
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// Add records a span under epoch 0; zero-length and reversed spans are
// ignored.
func (t *Trace) Add(proc int, start, end float64, kind byte) {
	t.AddEpoch(proc, 0, start, end, kind)
}

// AddEpoch records a span tagged with the recording incarnation's epoch;
// zero-length and reversed spans are ignored.
func (t *Trace) AddEpoch(proc int, epoch int64, start, end float64, kind byte) {
	if t == nil || end <= start {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Proc: proc, Epoch: epoch, Start: start, End: end, Kind: kind})
	t.mu.Unlock()
}

// AddSpans bulk-appends pre-built spans (a worker episode's buffer) under
// one lock acquisition; zero-length and reversed spans are dropped.
func (t *Trace) AddSpans(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, s := range spans {
		if s.End > s.Start {
			t.spans = append(t.spans, s)
		}
	}
	t.mu.Unlock()
}

// Discard marks every span recorded by (proc, epoch) as discarded — the
// incarnation was fenced and its contributions never landed — and
// returns how many spans it marked.
func (t *Trace) Discard(proc int, epoch int64) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.spans {
		if t.spans[i].Proc == proc && t.spans[i].Epoch == epoch && !t.spans[i].Discarded {
			t.spans[i].Discarded = true
			n++
		}
	}
	return n
}

// Spans returns the recorded spans sorted by (proc, start).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Makespan returns the largest span end time; 0 for an empty (or nil)
// trace.
func (t *Trace) Makespan() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var m float64
	for _, s := range t.spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// Timeline renders an ASCII Gantt chart: one row per process (at most
// maxRows, sampled evenly), width time buckets, with the latest-recorded
// span kind shown per bucket ('c' compute, 'm' communication, 'p'
// prefetch, 'f' flush, 's' steal, '.' idle; discarded spans render as
// 'x'). Empty or degenerate traces render a placeholder instead of
// dividing by zero.
func (t *Trace) Timeline(width, maxRows int) string {
	spans := t.Spans()
	if len(spans) == 0 || width <= 0 {
		return "(empty trace)\n"
	}
	makespan := t.Makespan()
	if makespan <= 0 {
		return "(empty trace)\n"
	}
	nproc := 0
	for _, s := range spans {
		if s.Proc+1 > nproc {
			nproc = s.Proc + 1
		}
	}
	rows := nproc
	if maxRows > 0 && rows > maxRows {
		rows = maxRows
	}
	// Map proc -> display row (even sampling when compressed).
	rowOf := func(p int) int { return p * rows / nproc }

	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(string(rune(SpanIdle)), width))
	}
	for _, s := range spans {
		r := rowOf(s.Proc)
		k := s.Kind
		if s.Discarded {
			k = 'x'
		}
		b0 := int(s.Start / makespan * float64(width))
		b1 := int(s.End / makespan * float64(width))
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			grid[r][b] = k
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %d procs x %.4fs  (c=compute m=comm p=prefetch f=flush s=steal r=rpc .=idle x=discarded)\n",
		nproc, makespan)
	for r := range grid {
		fmt.Fprintf(&sb, "%4d |%s|\n", r*nproc/rows, grid[r])
	}
	return sb.String()
}

// KindTotals sums span durations by kind, excluding discarded spans (a
// fenced incarnation's activity must not inflate the accounting; see
// DiscardedTotal for what was thrown away).
func (t *Trace) KindTotals() map[byte]float64 {
	totals := map[byte]float64{}
	for _, s := range t.Spans() {
		if s.Discarded {
			continue
		}
		totals[s.Kind] += s.End - s.Start
	}
	return totals
}

// DiscardedTotal returns the number of discarded spans and their summed
// duration — work executed by fenced incarnations and re-done elsewhere.
func (t *Trace) DiscardedTotal() (spans int, seconds float64) {
	for _, s := range t.Spans() {
		if s.Discarded {
			spans++
			seconds += s.End - s.Start
		}
	}
	return spans, seconds
}
