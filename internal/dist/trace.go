package dist

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span kinds recorded by simulation traces.
const (
	SpanCompute = 'c'
	SpanComm    = 'm'
	SpanSteal   = 's'
	SpanIdle    = '.'
)

// Span is one activity interval of a simulated process.
type Span struct {
	Proc       int
	Start, End float64
	Kind       byte
}

// Trace collects activity spans from a simulation run for post-hoc
// inspection (an observability aid; rendering is approximate where the
// fluid work model revises earlier intervals).
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// Add records a span; zero-length and reversed spans are ignored.
func (t *Trace) Add(proc int, start, end float64, kind byte) {
	if t == nil || end <= start {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Proc: proc, Start: start, End: end, Kind: kind})
	t.mu.Unlock()
}

// Spans returns the recorded spans sorted by (proc, start).
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Makespan returns the largest span end time.
func (t *Trace) Makespan() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var m float64
	for _, s := range t.spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// Timeline renders an ASCII Gantt chart: one row per process (at most
// maxRows, sampled evenly), width time buckets, with the latest-recorded
// span kind shown per bucket ('c' compute, 'm' communication, 's' steal
// transfer, '.' idle).
func (t *Trace) Timeline(width, maxRows int) string {
	spans := t.Spans()
	if len(spans) == 0 || width <= 0 {
		return "(empty trace)\n"
	}
	makespan := t.Makespan()
	if makespan <= 0 {
		return "(empty trace)\n"
	}
	nproc := 0
	for _, s := range spans {
		if s.Proc+1 > nproc {
			nproc = s.Proc + 1
		}
	}
	rows := nproc
	if maxRows > 0 && rows > maxRows {
		rows = maxRows
	}
	// Map proc -> display row (even sampling when compressed).
	rowOf := func(p int) int { return p * rows / nproc }

	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(string(rune(SpanIdle)), width))
	}
	for _, s := range spans {
		r := rowOf(s.Proc)
		b0 := int(s.Start / makespan * float64(width))
		b1 := int(s.End / makespan * float64(width))
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			grid[r][b] = s.Kind
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %d procs x %.4fs  (c=compute m=comm s=steal .=idle)\n",
		nproc, makespan)
	for r := range grid {
		fmt.Fprintf(&sb, "%4d |%s|\n", r*nproc/rows, grid[r])
	}
	return sb.String()
}

// KindTotals sums span durations by kind.
func (t *Trace) KindTotals() map[byte]float64 {
	totals := map[byte]float64{}
	for _, s := range t.Spans() {
		totals[s.Kind] += s.End - s.Start
	}
	return totals
}
