package dist

import (
	"strings"
	"testing"
)

func TestTraceAddAndSpans(t *testing.T) {
	tr := &Trace{}
	tr.Add(1, 0, 2, SpanComm)
	tr.Add(0, 1, 3, SpanCompute)
	tr.Add(0, 5, 5, SpanCompute) // zero-length: dropped
	tr.Add(0, 6, 4, SpanCompute) // reversed: dropped
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Sorted by proc then start.
	if spans[0].Proc != 0 || spans[1].Proc != 1 {
		t.Fatalf("spans not sorted: %+v", spans)
	}
	if tr.Makespan() != 3 {
		t.Fatalf("makespan %v", tr.Makespan())
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Add(0, 0, 1, SpanCompute) // must not panic
}

func TestTraceTimeline(t *testing.T) {
	tr := &Trace{}
	tr.Add(0, 0, 1, SpanComm)
	tr.Add(0, 1, 10, SpanCompute)
	tr.Add(1, 0, 5, SpanCompute)
	out := tr.Timeline(20, 8)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 proc rows
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.Contains(lines[1], "c") || !strings.Contains(lines[1], "m") {
		t.Fatalf("proc 0 row missing kinds: %q", lines[1])
	}
	// Proc 1 idle in the second half.
	if !strings.Contains(lines[2], ".") {
		t.Fatalf("proc 1 row missing idle: %q", lines[2])
	}
}

func TestTraceTimelineEmpty(t *testing.T) {
	tr := &Trace{}
	if !strings.Contains(tr.Timeline(10, 4), "empty") {
		t.Fatal("expected empty-trace message")
	}
}

func TestTraceKindTotals(t *testing.T) {
	tr := &Trace{}
	tr.Add(0, 0, 2, SpanCompute)
	tr.Add(1, 1, 4, SpanCompute)
	tr.Add(0, 2, 3, SpanComm)
	totals := tr.KindTotals()
	if totals[SpanCompute] != 5 || totals[SpanComm] != 1 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestTraceRowCompression(t *testing.T) {
	tr := &Trace{}
	for p := 0; p < 100; p++ {
		tr.Add(p, 0, 1, SpanCompute)
	}
	out := tr.Timeline(10, 10)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 11 { // header + 10 rows
		t.Fatalf("expected 10 compressed rows, got %d lines", len(lines)-1)
	}
}
