package dist

import (
	"fmt"
	"math"
)

// Config describes the simulated machine. Defaults reproduce the paper's
// Lonestar testbed (Table I and Sec. IV-A): dual-socket 12-core nodes on a
// 5 GB/s InfiniBand fabric, with the ERI timing constants of Table V.
type Config struct {
	CoresPerNode int     // 12 on Lonestar
	BandwidthBps float64 // interconnect bandwidth, bytes/s (5 GB/s)
	LatencySec   float64 // per one-sided operation
	// QueueServiceSec is the serialization cost of one access to a
	// centralized task-queue counter (NWChem's dynamic scheduler); each
	// access also pays LatencySec.
	QueueServiceSec float64
	// TIntGTFock is the average single-core time per ERI for the
	// GTFock/ERD-style engine (Table V: 4.76 us for C24H12).
	TIntGTFock float64
	// TIntNWChemFactor scales TIntGTFock to NWChem's per-ERI time; NWChem's
	// primitive pre-screening makes it faster, especially on alkanes
	// (Sec. IV-B). Typical: ~0.85 graphene, ~0.55 alkane.
	TIntNWChemFactor float64
	// GFlopsPerNode is the dense double-precision rate of one node
	// (Table I: 160 GFlop/s), used by the purification time model.
	GFlopsPerNode float64
	// CheckCostSec is the cost of one screening/symmetry check in the
	// Algorithm 3 task loop, which scans |Phi(M)| x |Phi(N)| candidate
	// quartets per task; part of GTFock's scheduler overhead.
	CheckCostSec float64
	// DenseEfficiency is the fraction of GFlopsPerNode a distributed
	// dense multiply actually achieves at SCF matrix sizes (panel widths
	// of a few hundred): well below peak for the era's stacks.
	DenseEfficiency float64
	// SummaStepOverheadSec is the per-panel-step synchronization cost of
	// a SUMMA multiply (broadcast setup, progress, imbalance).
	SummaStepOverheadSec float64
}

// Lonestar returns the paper's machine constants.
func Lonestar() Config {
	return Config{
		CoresPerNode: 12,
		BandwidthBps: 5e9,
		// Effective one-sided latency including ARMCI software overhead
		// and data-server contention (the raw wire latency is ~2 us).
		LatencySec: 10e-6,
		// NXTVAL-style remote atomic on the centralized counter: a network
		// round trip serviced by one process's progress engine; measured
		// costs under contention on fabrics of this era are tens of
		// microseconds.
		QueueServiceSec:      25e-6,
		TIntGTFock:           4.76e-6,
		TIntNWChemFactor:     0.85,
		GFlopsPerNode:        160,
		CheckCostSec:         3e-9,
		DenseEfficiency:      0.1,
		SummaStepOverheadSec: 3e-3,
	}
}

// CommTime returns the alpha-beta cost of a transfer: calls*latency +
// bytes/bandwidth.
func (c Config) CommTime(calls, bytes int64) float64 {
	return float64(calls)*c.LatencySec + float64(bytes)/c.BandwidthBps
}

// PaperCoreCounts are the core counts used for Tables III, IV, VI-VIII
// and Fig. 2: square node grids 1,3^2,6^2,9^2,12^2,18^2 nodes at 12
// cores/node, spanning 12..3888 cores as in the paper.
var PaperCoreCounts = []int{12, 108, 432, 972, 1728, 3888}

// SquareGridFor returns (prow, pcol) for n processes, as close to square
// as possible with prow*pcol == n (prow <= pcol).
func SquareGridFor(n int) (int, int) {
	if n <= 0 {
		panic("dist: non-positive process count")
	}
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}

// NodesFor converts a core count to a node count for GTFock (one process
// per node, Sec. IV-A); the core count must be a multiple of CoresPerNode.
func (c Config) NodesFor(cores int) (int, error) {
	if cores%c.CoresPerNode != 0 {
		return 0, fmt.Errorf("dist: %d cores is not a multiple of %d per node",
			cores, c.CoresPerNode)
	}
	return cores / c.CoresPerNode, nil
}

// IsPerfectSquare reports whether n is a perfect square.
func IsPerfectSquare(n int) bool {
	if n < 0 {
		return false
	}
	r := int(math.Round(math.Sqrt(float64(n))))
	return r*r == n
}
