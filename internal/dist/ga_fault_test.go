package dist

import (
	"context"
	"errors"
	"testing"
	"time"

	"gtfock/internal/linalg"
)

type fixedFence map[int]int64

func (f fixedFence) ValidEpoch(proc int, epoch int64) bool { return f[proc] == epoch }

func TestTryGetDropCountsAndCopiesNothing(t *testing.T) {
	g := UniformGrid2D(2, 2, 4, 4)
	st := NewRunStats(4)
	ga := NewGlobalArray(g, st)
	ga.LoadMatrix(linalg.Identity(4))

	drops := 2
	ga.SetOpHook(func(proc int, op OpKind) (time.Duration, bool) {
		if op == OpGet && drops > 0 {
			drops--
			return 0, true
		}
		return 0, false
	})
	dst := make([]float64, 16)
	if err := ga.TryGet(1, 0, 4, 0, 4, dst, 4); !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatal("dropped Get copied data")
		}
	}
	if st.Recovery.OpDrops != 1 {
		t.Fatalf("OpDrops = %d, want 1", st.Recovery.OpDrops)
	}
	// GetRetry rides out the remaining drop.
	retries, err := ga.GetRetry(context.Background(), 4, 0, 1, 0, 4, 0, 4, dst, 4)
	if err != nil {
		t.Fatalf("GetRetry failed: %v", err)
	}
	if retries != 1 {
		t.Fatalf("GetRetry reported %d retries, want 1", retries)
	}
	if dst[0] != 1 || dst[5] != 1 {
		t.Fatal("GetRetry did not copy the data")
	}
	if st.Recovery.OpRetries != 1 {
		t.Fatalf("OpRetries = %d, want 1", st.Recovery.OpRetries)
	}
}

func TestGetRetryExhaustsAttempts(t *testing.T) {
	g := UniformGrid2D(1, 1, 2, 2)
	ga := NewGlobalArray(g, NewRunStats(1))
	ga.SetOpHook(func(int, OpKind) (time.Duration, bool) { return 0, true })
	dst := make([]float64, 4)
	if _, err := ga.GetRetry(context.Background(), 3, 0, 0, 0, 2, 0, 2, dst, 2); !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped after exhausting attempts, got %v", err)
	}
}

func TestAccFencedRejectsStaleEpoch(t *testing.T) {
	g := UniformGrid2D(1, 2, 2, 4)
	st := NewRunStats(2)
	ga := NewGlobalArray(g, st)
	fence := fixedFence{0: 3, 1: 5}
	ga.SetFence(fence)

	src := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	// Stale epoch: discarded, nothing applied.
	if err := ga.AccFenced(0, 2, 0, 2, 0, 4, src, 4, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("want ErrFenced, got %v", err)
	}
	if m := ga.ToMatrix(); m.MaxAbs() != 0 {
		t.Fatal("fenced Acc modified the array")
	}
	// Live epoch: applied.
	if err := ga.AccFenced(0, 3, 0, 2, 0, 4, src, 4, 2); err != nil {
		t.Fatalf("valid AccFenced failed: %v", err)
	}
	if m := ga.ToMatrix(); m.At(1, 3) != 2 {
		t.Fatalf("Acc not applied: got %v", m.At(1, 3))
	}
}

func TestAccFencedRetryRidesOutDrops(t *testing.T) {
	g := UniformGrid2D(1, 1, 2, 2)
	st := NewRunStats(1)
	ga := NewGlobalArray(g, st)
	ga.SetFence(fixedFence{0: 1})
	drops := 3
	ga.SetOpHook(func(proc int, op OpKind) (time.Duration, bool) {
		if drops > 0 {
			drops--
			return 0, true
		}
		return 0, false
	})
	src := []float64{1, 2, 3, 4}
	retries, err := ga.AccFencedRetry(context.Background(), 0, 0, 1, 0, 2, 0, 2, src, 2, 1)
	if err != nil {
		t.Fatalf("AccFencedRetry: %v", err)
	}
	if m := ga.ToMatrix(); m.At(1, 1) != 4 {
		t.Fatal("retry did not eventually apply the Acc")
	}
	if st.Recovery.OpRetries != 3 || retries != 3 {
		t.Fatalf("OpRetries = %d (reported %d), want 3", st.Recovery.OpRetries, retries)
	}
	// Once the fence goes stale, retry stops with ErrFenced.
	ga.SetFence(fixedFence{0: 99})
	if _, err := ga.AccFencedRetry(context.Background(), 0, 0, 1, 0, 2, 0, 2, src, 2, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("want ErrFenced, got %v", err)
	}
}

// Satellite coverage: AccFencedRetry under a hook that drops the first N
// attempts must report exactly N retries and accumulate the contribution
// exactly once — never zero times, never N+1.
func TestAccFencedRetryDropFirstNExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 4, 9} {
		g := UniformGrid2D(1, 1, 2, 2)
		st := NewRunStats(1)
		ga := NewGlobalArray(g, st)
		ga.SetFence(fixedFence{0: 1})
		drops := n
		attempts := 0
		ga.SetOpHook(func(proc int, op OpKind) (time.Duration, bool) {
			attempts++
			if drops > 0 {
				drops--
				return 0, true
			}
			return 0, false
		})
		src := []float64{1, 2, 3, 4}
		retries, err := ga.AccFencedRetry(context.Background(), 0, 0, 1, 0, 2, 0, 2, src, 2, 1)
		if err != nil {
			t.Fatalf("N=%d: AccFencedRetry: %v", n, err)
		}
		if retries != n || st.Recovery.OpRetries != int64(n) {
			t.Fatalf("N=%d: retries = %d, stats = %d; want %d", n, retries, st.Recovery.OpRetries, n)
		}
		if attempts != n+1 {
			t.Fatalf("N=%d: hook saw %d attempts, want %d", n, attempts, n+1)
		}
		// Exactly-once: each element equals src, not a multiple of it.
		m := ga.ToMatrix()
		for i, want := range src {
			if got := m.Data[i]; got != want {
				t.Fatalf("N=%d: element %d = %v, want %v (applied other than once)", n, i, got, want)
			}
		}
	}
}

// A context deadline caps the total retry wall time of both retry
// wrappers: with a permanently dropping transport they must return the
// context error promptly instead of sleeping out their full backoff
// schedules (GetRetry) or spinning forever (AccFencedRetry).
func TestRetryContextDeadlineCapsWallTime(t *testing.T) {
	g := UniformGrid2D(1, 1, 2, 2)
	ga := NewGlobalArray(g, NewRunStats(1))
	ga.SetFence(fixedFence{0: 1})
	ga.SetOpHook(func(int, OpKind) (time.Duration, bool) { return 0, true })
	dst := make([]float64, 4)
	src := []float64{1, 1, 1, 1}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if _, err := ga.GetRetry(ctx, 50, 20*time.Millisecond, 0, 0, 2, 0, 2, dst, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("GetRetry: want DeadlineExceeded, got %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if _, err := ga.AccFencedRetry(ctx2, 5*time.Millisecond, 0, 1, 0, 2, 0, 2, src, 2, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AccFencedRetry: want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("deadline-capped retries took %v", elapsed)
	}
	if m := ga.ToMatrix(); m.MaxAbs() != 0 {
		t.Fatal("deadline-abandoned Acc modified the array")
	}
}

// Jitter must stay within [d/2, 3d/2) and preserve zero.
func TestJitterBounds(t *testing.T) {
	if Jitter(0) != 0 {
		t.Fatal("Jitter(0) != 0")
	}
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := Jitter(d)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("Jitter(%v) = %v out of [d/2, 3d/2)", d, j)
		}
	}
}
