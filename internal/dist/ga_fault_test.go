package dist

import (
	"errors"
	"testing"
	"time"

	"gtfock/internal/linalg"
)

type fixedFence map[int]int64

func (f fixedFence) ValidEpoch(proc int, epoch int64) bool { return f[proc] == epoch }

func TestTryGetDropCountsAndCopiesNothing(t *testing.T) {
	g := UniformGrid2D(2, 2, 4, 4)
	st := NewRunStats(4)
	ga := NewGlobalArray(g, st)
	ga.LoadMatrix(linalg.Identity(4))

	drops := 2
	ga.SetOpHook(func(proc int, op OpKind) (time.Duration, bool) {
		if op == OpGet && drops > 0 {
			drops--
			return 0, true
		}
		return 0, false
	})
	dst := make([]float64, 16)
	if err := ga.TryGet(1, 0, 4, 0, 4, dst, 4); !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatal("dropped Get copied data")
		}
	}
	if st.Recovery.OpDrops != 1 {
		t.Fatalf("OpDrops = %d, want 1", st.Recovery.OpDrops)
	}
	// GetRetry rides out the remaining drop.
	retries, err := ga.GetRetry(4, 0, 1, 0, 4, 0, 4, dst, 4)
	if err != nil {
		t.Fatalf("GetRetry failed: %v", err)
	}
	if retries != 1 {
		t.Fatalf("GetRetry reported %d retries, want 1", retries)
	}
	if dst[0] != 1 || dst[5] != 1 {
		t.Fatal("GetRetry did not copy the data")
	}
	if st.Recovery.OpRetries != 1 {
		t.Fatalf("OpRetries = %d, want 1", st.Recovery.OpRetries)
	}
}

func TestGetRetryExhaustsAttempts(t *testing.T) {
	g := UniformGrid2D(1, 1, 2, 2)
	ga := NewGlobalArray(g, NewRunStats(1))
	ga.SetOpHook(func(int, OpKind) (time.Duration, bool) { return 0, true })
	dst := make([]float64, 4)
	if _, err := ga.GetRetry(3, 0, 0, 0, 2, 0, 2, dst, 2); !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped after exhausting attempts, got %v", err)
	}
}

func TestAccFencedRejectsStaleEpoch(t *testing.T) {
	g := UniformGrid2D(1, 2, 2, 4)
	st := NewRunStats(2)
	ga := NewGlobalArray(g, st)
	fence := fixedFence{0: 3, 1: 5}
	ga.SetFence(fence)

	src := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	// Stale epoch: discarded, nothing applied.
	if err := ga.AccFenced(0, 2, 0, 2, 0, 4, src, 4, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("want ErrFenced, got %v", err)
	}
	if m := ga.ToMatrix(); m.MaxAbs() != 0 {
		t.Fatal("fenced Acc modified the array")
	}
	// Live epoch: applied.
	if err := ga.AccFenced(0, 3, 0, 2, 0, 4, src, 4, 2); err != nil {
		t.Fatalf("valid AccFenced failed: %v", err)
	}
	if m := ga.ToMatrix(); m.At(1, 3) != 2 {
		t.Fatalf("Acc not applied: got %v", m.At(1, 3))
	}
}

func TestAccFencedRetryRidesOutDrops(t *testing.T) {
	g := UniformGrid2D(1, 1, 2, 2)
	st := NewRunStats(1)
	ga := NewGlobalArray(g, st)
	ga.SetFence(fixedFence{0: 1})
	drops := 3
	ga.SetOpHook(func(proc int, op OpKind) (time.Duration, bool) {
		if drops > 0 {
			drops--
			return 0, true
		}
		return 0, false
	})
	src := []float64{1, 2, 3, 4}
	retries, err := ga.AccFencedRetry(0, 0, 1, 0, 2, 0, 2, src, 2, 1)
	if err != nil {
		t.Fatalf("AccFencedRetry: %v", err)
	}
	if m := ga.ToMatrix(); m.At(1, 1) != 4 {
		t.Fatal("retry did not eventually apply the Acc")
	}
	if st.Recovery.OpRetries != 3 || retries != 3 {
		t.Fatalf("OpRetries = %d (reported %d), want 3", st.Recovery.OpRetries, retries)
	}
	// Once the fence goes stale, retry stops with ErrFenced.
	ga.SetFence(fixedFence{0: 99})
	if _, err := ga.AccFencedRetry(0, 0, 1, 0, 2, 0, 2, src, 2, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("want ErrFenced, got %v", err)
	}
}
