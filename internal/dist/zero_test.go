package dist

import (
	"math"
	"strings"
	"testing"
)

// Degenerate runs — a 0-process stats object, or a process grid whose
// workers never recorded any time (0-task partitions) — must yield
// defined metric values, not NaN from 0/0.
func TestRunStatsEmptyRunIsDefined(t *testing.T) {
	for _, rs := range []*RunStats{NewRunStats(0), NewRunStats(3)} {
		for name, v := range map[string]float64{
			"TFockAvg":     rs.TFockAvg(),
			"TFockMax":     rs.TFockMax(),
			"TCompAvg":     rs.TCompAvg(),
			"TOverheadAvg": rs.TOverheadAvg(),
			"VolumeAvgMB":  rs.VolumeAvgMB(),
			"CallsAvg":     rs.CallsAvg(),
			"StealsAvg":    rs.StealsAvg(),
			"VictimsAvg":   rs.VictimsAvg(),
			"QueueOpsAvg":  rs.QueueOpsAvg(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("P=%d: %s = %v on an empty run", rs.P(), name, v)
			}
			if v != 0 {
				t.Fatalf("P=%d: %s = %v, want 0", rs.P(), name, v)
			}
		}
		if l := rs.LoadBalance(); l != 1 {
			t.Fatalf("P=%d: LoadBalance = %v on an empty run, want 1", rs.P(), l)
		}
	}
}

// An empty or nil trace must render and total cleanly.
func TestTraceEmptyAndNilAreDefined(t *testing.T) {
	for _, tr := range []*Trace{nil, {}} {
		if m := tr.Makespan(); m != 0 {
			t.Fatalf("Makespan = %v on empty trace", m)
		}
		if tr != nil && !strings.Contains(tr.Timeline(10, 4), "empty") {
			t.Fatal("expected empty-trace placeholder")
		}
		if tot := tr.KindTotals(); len(tot) != 0 {
			t.Fatalf("KindTotals = %v on empty trace", tot)
		}
		if n, s := tr.DiscardedTotal(); n != 0 || s != 0 {
			t.Fatalf("DiscardedTotal = %d, %v on empty trace", n, s)
		}
	}
}

// Discard marks exactly the spans of one (proc, epoch) incarnation;
// totals exclude them and the timeline renders them as 'x'.
func TestTraceDiscardByEpoch(t *testing.T) {
	tr := &Trace{}
	tr.AddEpoch(0, 1, 0, 2, SpanCompute) // fenced incarnation
	tr.AddEpoch(0, 2, 2, 3, SpanCompute) // its successor
	tr.AddEpoch(1, 1, 0, 4, SpanCompute) // another rank, same epoch number
	if n := tr.Discard(0, 1); n != 1 {
		t.Fatalf("Discard marked %d spans, want 1", n)
	}
	if tot := tr.KindTotals(); tot[SpanCompute] != 1+4 {
		t.Fatalf("KindTotals after discard = %v, want compute 5", tot)
	}
	n, secs := tr.DiscardedTotal()
	if n != 1 || secs != 2 {
		t.Fatalf("DiscardedTotal = %d, %v; want 1, 2", n, secs)
	}
	if out := tr.Timeline(8, 4); !strings.Contains(out, "x") {
		t.Fatalf("discarded span not rendered:\n%s", out)
	}
	// Idempotent.
	if n := tr.Discard(0, 1); n != 0 {
		t.Fatalf("second Discard marked %d spans, want 0", n)
	}
}
